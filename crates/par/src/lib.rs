//! Work-stealing parallelism for the CATS pipeline.
//!
//! The paper notes CATS "is implemented in a parallelized style for fast
//! processing" and evaluates on a 40-vCPU server. This crate supplies the
//! runtime for that claim without pulling in an external scheduler: a scoped
//! work-stealing pool built on `std::thread::scope`, plus the three
//! primitives the pipeline's hot paths need — [`parallel_for`],
//! order-preserving [`map_indexed`] / [`map_chunked`], and a deterministic
//! tree [`reduce`].
//!
//! # Scheduling
//!
//! Work is an index range `0..n`. Each worker owns a range queue packed into
//! a single `AtomicU64` (`start` in the high 32 bits, `end` in the low 32).
//! Owners pop a grain of indices from the front with a CAS; idle workers
//! steal the back half of a victim's remaining range with a CAS. Both
//! operations only depend on the queue's *current* value, so the ABA
//! pattern is harmless, and a failed CAS simply reloads and retries. A
//! worker exits once a full scan over the other queues finds nothing to
//! steal. Because stealing rebalances at grain granularity, heavily skewed
//! per-index costs (e.g. items with wildly different comment counts) do not
//! straggle the way static chunking does.
//!
//! # Determinism contract
//!
//! The scheduler decides only *which thread* runs an index, never *what* is
//! computed for it. [`map_indexed`] and [`map_chunked`] write each result
//! into its own slot, so their output is identical to the serial loop for
//! any thread count, provided `f` itself is a pure function of the index.
//! [`reduce`] fixes its chunk boundaries from the caller-supplied chunk
//! size (not the thread count) and combines partials in chunk order, so
//! floating-point accumulation is reassociated relative to a plain serial
//! fold, but identically so at every thread count. Callers that need
//! bit-compatibility with a historical serial order must pick chunk
//! boundaries matching that order (or keep the accumulation inside
//! `map_chunk`).
//!
//! # Supervision
//!
//! A panic inside `f` must not take the pool down with it: each job runs
//! under `catch_unwind`, the worker keeps draining its queue, and the
//! *first* captured payload is rethrown on the calling thread after the
//! scope joins. Callers therefore still observe the panic (the contract
//! of `parallel_for` and friends is unchanged), but every other index
//! still runs exactly once, and the pool never leaks a wedged worker.
//! Each captured panic is tallied under `cats.par.pool.job_panics`
//! (DESIGN.md §10).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// First panic payload captured by any worker during one `run_indexed`
/// scope; rethrown on the caller's thread once all workers have joined.
type PanicSlot = Mutex<Option<Box<dyn Any + Send>>>;

/// How much parallelism a pipeline stage may use.
///
/// `threads == 0` means "auto": resolve to [`default_threads`] at the call
/// site. `deterministic` selects, for stages that offer one, the schedule
/// whose results are a pure function of the inputs and seed — identical at
/// every thread count. Stages without a nondeterministic fast path ignore
/// the flag (everything in this repo except Hogwild word2vec is
/// deterministic by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads to use; `0` resolves to [`default_threads`].
    pub threads: usize,
    /// Prefer bit-reproducible schedules over raw throughput.
    pub deterministic: bool,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self { threads: 0, deterministic: true }
    }
}

impl Parallelism {
    /// Single-threaded execution; every primitive degenerates to the plain
    /// serial loop.
    pub fn serial() -> Self {
        Self { threads: 1, deterministic: true }
    }

    /// Deterministic execution on `threads` workers (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads, deterministic: true }
    }

    /// The concrete worker count: `threads`, or [`default_threads`] if auto.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }
}

/// The machine's available parallelism, falling back to 4 when the runtime
/// cannot tell (the same fallback the scoped-thread batch extractor used
/// before this crate existed).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, usize::from)
}

/// A contiguous index range `[start, end)` packed into one `AtomicU64` so
/// pop and steal are single-CAS operations.
struct RangeQueue(AtomicU64);

fn pack(start: u32, end: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(end)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl RangeQueue {
    fn new(start: u32, end: u32) -> Self {
        Self(AtomicU64::new(pack(start, end)))
    }

    /// Owner side: take up to `grain` indices from the front.
    fn pop(&self, grain: u32) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            let take = grain.min(e - s);
            match self.0.compare_exchange_weak(
                cur,
                pack(s + take, e),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((s, s + take)),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: claim the back half of whatever remains.
    fn steal_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (s, e) = unpack(cur);
            if s >= e {
                return None;
            }
            // Take the *smaller* half (at least one grain): the victim
            // keeps the majority of its own range, which preserves
            // locality and matches the documented partitioning.
            let take = ((e - s) / 2).max(1);
            match self.0.compare_exchange_weak(
                cur,
                pack(s, e - take),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((e - take, e)),
                Err(now) => cur = now,
            }
        }
    }

    /// Replace the queue's range. Only legal on the caller's *own* queue
    /// and only while it is empty — thieves may still CAS against the new
    /// value, which is fine; they must never observe a torn one, which the
    /// single-word store rules out.
    fn put(&self, start: u32, end: u32) {
        self.0.store(pack(start, end), Ordering::Release);
    }
}

/// One OS worker: drain the own queue, then go stealing; exit when a full
/// sweep of the other queues comes back empty. (Another worker may still be
/// *executing* its last grain at that point, but every unclaimed index is
/// in some queue, so nothing is lost by leaving early.)
fn worker<F: Fn(usize) + Sync>(
    me: usize,
    queues: &[RangeQueue],
    grain: u32,
    f: &F,
    popped: &cats_obs::Counter,
    stolen: &cats_obs::Counter,
    panics: &cats_obs::Counter,
    panic_slot: &PanicSlot,
) {
    // Pool-utilization tallies are kept in locals and flushed to the
    // registry once per worker, so the hot loop stays free of shared
    // atomics beyond the queues themselves.
    let mut n_popped = 0u64;
    let mut n_stolen = 0u64;
    let mut n_panics = 0u64;
    loop {
        while let Some((s, e)) = queues[me].pop(grain) {
            n_popped += 1;
            for i in s..e {
                // Supervise each job: a panic is captured (first payload
                // kept for the caller), counted, and the worker moves on
                // to the next index rather than unwinding the pool.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i as usize))) {
                    n_panics += 1;
                    let mut slot = panic_slot.lock().unwrap_or_else(PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        }
        let mut grabbed = None;
        for k in 1..queues.len() {
            let victim = (me + k) % queues.len();
            if let Some(range) = queues[victim].steal_half() {
                grabbed = Some(range);
                break;
            }
        }
        match grabbed {
            Some((s, e)) => {
                n_stolen += 1;
                queues[me].put(s, e);
            }
            None => break,
        }
    }
    popped.add(n_popped);
    stolen.add(n_stolen);
    if n_panics > 0 {
        panics.add(n_panics);
    }
}

fn run_indexed<F: Fn(usize) + Sync>(par: Parallelism, n: usize, f: &F) {
    let threads = par.resolved_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    assert!(u32::try_from(n).is_ok(), "parallel index range exceeds u32 ({n} items)");
    let grain = u32::try_from((n / (threads * 8)).clamp(1, 1024)).expect("grain fits u32");
    let queues: Vec<RangeQueue> = (0..threads)
        .map(|w| RangeQueue::new((w * n / threads) as u32, ((w + 1) * n / threads) as u32))
        .collect();
    let queues = &queues;
    let popped = cats_obs::counter("cats.par.pool.tasks_popped");
    let stolen = cats_obs::counter("cats.par.pool.tasks_stolen");
    let panics = cats_obs::counter("cats.par.pool.job_panics");
    cats_obs::counter("cats.par.pool.runs").inc();
    let (popped, stolen, panics) = (&*popped, &*stolen, &*panics);
    let panic_slot: PanicSlot = Mutex::new(None);
    {
        let panic_slot = &panic_slot;
        std::thread::scope(|scope| {
            for w in 0..threads {
                scope
                    .spawn(move || worker(w, queues, grain, f, popped, stolen, panics, panic_slot));
            }
        });
    }
    // Every worker has joined; rethrow the first captured panic so callers
    // keep the pre-supervision contract (a panicking job panics the call).
    if let Some(payload) = panic_slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
        resume_unwind(payload);
    }
}

/// Runs `f(i)` for every `i in 0..n`, each index exactly once, on up to
/// `par.resolved_threads()` workers. A panic in `f` is captured by the
/// supervising worker (the rest of the range still runs) and rethrown
/// here after all workers join.
pub fn parallel_for<F: Fn(usize) + Sync>(par: Parallelism, n: usize, f: F) {
    run_indexed(par, n, &f);
}

/// `(0..n).map(f).collect()`, computed in parallel with the output in index
/// order. `R: Sync` because results land in shared `OnceLock` slots.
pub fn map_indexed<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send + Sync,
    F: Fn(usize) -> R + Sync,
{
    let threads = par.resolved_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    {
        let slots = &slots;
        let f = &f;
        run_indexed(par, n, &move |i| {
            let _ = slots[i].set(f(i));
        });
    }
    slots.into_iter().map(|slot| slot.into_inner().expect("index ran exactly once")).collect()
}

/// `items.iter().map(f).collect()`, computed in parallel with the output in
/// input order.
pub fn map_chunked<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(par, items.len(), |i| f(&items[i]))
}

/// Deterministic tree reduction: `items` is cut at fixed `chunk` boundaries
/// (independent of the thread count), each chunk is mapped to a partial
/// with `map_chunk` in parallel, and the partials are folded pairwise in
/// chunk order. Returns `None` on empty input.
pub fn reduce<T, A, M, C>(
    par: Parallelism,
    items: &[T],
    chunk: usize,
    map_chunk: M,
    combine: C,
) -> Option<A>
where
    T: Sync,
    A: Send + Sync,
    M: Fn(&[T]) -> A + Sync,
    C: Fn(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let chunk = chunk.max(1);
    let n_chunks = items.len().div_ceil(chunk);
    let mut partials: Vec<A> = map_indexed(par, n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(items.len());
        map_chunk(&items[lo..hi])
    });
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(combine(a, b)),
                None => next.push(a),
            }
        }
        partials = next;
    }
    partials.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn default_is_auto_deterministic() {
        let par = Parallelism::default();
        assert_eq!(par.threads, 0);
        assert!(par.deterministic);
        assert!(par.resolved_threads() >= 1);
        assert_eq!(Parallelism::serial().resolved_threads(), 1);
        assert_eq!(Parallelism::with_threads(3).resolved_threads(), 3);
    }

    #[test]
    fn pack_unpack_round_trips() {
        for &(s, e) in &[(0u32, 0u32), (0, 7), (5, 5), (123, u32::MAX)] {
            assert_eq!(unpack(pack(s, e)), (s, e));
        }
    }

    #[test]
    fn queue_pop_and_steal_partition_the_range() {
        let q = RangeQueue::new(0, 10);
        assert_eq!(q.pop(3), Some((0, 3)));
        assert_eq!(q.steal_half(), Some((7, 10)));
        assert_eq!(q.pop(100), Some((3, 7)));
        assert_eq!(q.pop(1), None);
        assert_eq!(q.steal_half(), None);
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        for &threads in &[1usize, 2, 3, 8, 64] {
            let n = 1000;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(Parallelism::with_threads(threads), n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "every index must run exactly once at {threads} threads"
            );
        }
    }

    #[test]
    fn map_indexed_matches_serial_at_any_thread_count() {
        let n = 517;
        let expected: Vec<usize> = (0..n).map(|i| i * i + 1).collect();
        for &threads in &[1usize, 2, 5, 16] {
            let got = map_indexed(Parallelism::with_threads(threads), n, |i| i * i + 1);
            assert_eq!(got, expected, "order must be preserved at {threads} threads");
        }
    }

    #[test]
    fn map_chunked_preserves_input_order_under_skew() {
        // Heavily skewed per-item cost: early items are orders of magnitude
        // more expensive, which static chunking would serialize.
        let items: Vec<usize> = (0..200).collect();
        let costly = |&x: &usize| -> u64 {
            let spins = if x < 4 { 200_000 } else { 50 };
            (0..spins).fold(x as u64, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let expected: Vec<u64> = items.iter().map(costly).collect();
        let got = map_chunked(Parallelism::with_threads(8), &items, costly);
        assert_eq!(got, expected);
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = map_indexed(Parallelism::with_threads(8), 0, |i| i as u32);
        assert!(empty.is_empty());
        let one = map_indexed(Parallelism::with_threads(8), 1, |i| i + 41);
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn reduce_is_identical_across_thread_counts() {
        let items: Vec<f64> = (0..10_000).map(|i| (i as f64).sin()).collect();
        let sum = |xs: &[f64]| xs.iter().sum::<f64>();
        let serial = reduce(Parallelism::serial(), &items, 256, sum, |a, b| a + b).unwrap();
        for &threads in &[2usize, 4, 8] {
            let par =
                reduce(Parallelism::with_threads(threads), &items, 256, sum, |a, b| a + b).unwrap();
            assert_eq!(
                serial.to_bits(),
                par.to_bits(),
                "tree reduce must be bit-identical at {threads} threads"
            );
        }
        assert_eq!(reduce(Parallelism::default(), &[] as &[f64], 8, sum, |a, b| a + b), None);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        parallel_for(Parallelism::with_threads(4), 100, |i| {
            assert!(i != 57, "boom");
        });
    }

    #[test]
    fn supervision_runs_remaining_indices_and_counts_the_panic() {
        let n = 500;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let before = cats_obs::counter("cats.par.pool.job_panics").get();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_for(Parallelism::with_threads(4), n, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
                assert!(i != 57, "boom");
            });
        }));
        assert!(result.is_err(), "the first panic payload is rethrown to the caller");
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "every index still runs exactly once under supervision"
        );
        assert!(
            cats_obs::counter("cats.par.pool.job_panics").get() > before,
            "captured panics are tallied"
        );
    }
}
