//! Property-based tests for the sentiment scorer.

use cats_sentiment::SentimentModel;
use proptest::prelude::*;

fn docs(pol: &str, n: usize) -> Vec<Vec<String>> {
    (0..n).map(|i| vec![format!("{pol}{}", i % 5), format!("{pol}{}", (i + 1) % 5)]).collect()
}

fn model() -> SentimentModel {
    SentimentModel::train(&docs("good", 10), &docs("bad", 10))
}

fn token_vec() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop_oneof![
            Just("good0".to_string()),
            Just("good1".to_string()),
            Just("bad0".to_string()),
            Just("bad1".to_string()),
            "[a-z]{2,6}".prop_map(|s| s),
        ],
        0..40,
    )
}

proptest! {
    #[test]
    fn scores_always_in_unit_interval(toks in token_vec()) {
        let s = model().score(&toks);
        prop_assert!(s.is_finite());
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn score_invariant_under_permutation(mut toks in token_vec()) {
        let m = model();
        let a = m.score(&toks);
        toks.reverse();
        prop_assert!((m.score(&toks) - a).abs() < 1e-12);
    }

    #[test]
    fn adding_positive_token_never_decreases_score(toks in token_vec()) {
        // Appending the strongest positive token cannot lower a
        // length-normalized score below the all-unseen baseline direction.
        let m = model();
        let mut plus = toks.clone();
        plus.push("good0".into());
        let mut minus = toks;
        minus.push("bad0".into());
        prop_assert!(m.score(&plus) >= m.score(&minus) - 1e-12);
    }

    #[test]
    fn duplication_of_whole_comment_preserves_score(toks in token_vec()) {
        prop_assume!(!toks.is_empty());
        let m = model();
        let once = m.score(&toks);
        let mut twice = toks.clone();
        twice.extend(toks);
        // Length normalization: score depends on per-token average only.
        prop_assert!((m.score(&twice) - once).abs() < 1e-9);
    }

    #[test]
    fn average_score_within_min_max(comments in prop::collection::vec(token_vec(), 1..8)) {
        let m = model();
        let avg = m.average_score(&comments);
        let scores: Vec<f64> = comments.iter().map(|c| m.score(c)).collect();
        let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-12 && avg <= hi + 1e-12);
    }
}
