//! # cats-sentiment — comment sentiment substrate
//!
//! The paper's semantic analyzer scores every comment with a pre-trained
//! sentiment model (SnowNLP, trained on large-scale e-commerce review
//! data), producing the `averageSentiment` feature whose class-conditional
//! distributions (Fig 1) separate fraud items (mass near 1.0) from normal
//! items (mass near 0.7).
//!
//! SnowNLP's sentiment component is a multinomial Naive Bayes classifier
//! over segmented words, returning `P(positive | comment)`. This crate is
//! the same model class built from scratch:
//!
//! * [`SentimentModel::train`] fits token likelihoods with Laplace
//!   smoothing from positive- and negative-labeled review corpora;
//! * [`SentimentModel::score`] returns `P(positive)` ∈ [0, 1], computed
//!   with *length-normalized* log-likelihoods (the geometric-mean
//!   per-token likelihood). Normalization keeps long comments from
//!   saturating to exactly 0/1, matching the smooth densities of Fig 1.

use cats_io::io2::{Dec, Enc};
use cats_text::{Segmenter, TokenId, Vocab};
use serde::{Deserialize, Serialize};

/// Laplace smoothing pseudo-count.
const ALPHA: f64 = 1.0;

/// Version of the binary payload emitted by
/// [`SentimentModel::to_io2_payload`] (the snapshot `sentiment` section).
const SENTIMENT_CODEC_VERSION: u32 = 1;

/// Sharpness of the length-normalized posterior. The per-token average
/// log-likelihood ratio is multiplied by this before the sigmoid; it trades
/// off the saturation of the raw NB posterior (which drives every long
/// comment to exactly 0/1) against the washed-out scores of the pure
/// geometric mean. 2.5 reproduces the paper's Fig 1 shape: promotional
/// comments land near 1.0, organic mildly-positive ones near 0.7.
const TEMPERATURE: f64 = 2.5;

/// Emits the model's features of a segmented comment: the tokens
/// themselves, plus joined adjacent pairs in bigram mode.
fn feature_stream(tokens: &[String], order: FeatureOrder) -> Vec<String> {
    match order {
        FeatureOrder::Unigram => tokens.to_vec(),
        FeatureOrder::UnigramBigram => {
            let mut out = Vec::with_capacity(tokens.len() * 2);
            out.extend(tokens.iter().cloned());
            out.extend(tokens.windows(2).map(|w| format!("{}\u{1}{}", w[0], w[1])));
            out
        }
    }
}

/// Feature order used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureOrder {
    /// Bag of single tokens (SnowNLP's model).
    Unigram,
    /// Single tokens plus adjacent-pair features — captures negation-ish
    /// patterns ("bu hao") a unigram model conflates.
    UnigramBigram,
}

impl Default for FeatureOrder {
    fn default() -> Self {
        FeatureOrder::Unigram
    }
}

fn default_order() -> FeatureOrder {
    FeatureOrder::Unigram
}

/// A trained multinomial Naive Bayes sentiment scorer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentimentModel {
    #[serde(default = "default_order")]
    order: FeatureOrder,
    vocab: Vocab,
    /// log P(token | positive), indexed by `TokenId`.
    log_pos: Vec<f64>,
    /// log P(token | negative).
    log_neg: Vec<f64>,
    /// log prior of the positive class.
    log_prior_pos: f64,
    log_prior_neg: f64,
    /// log-likelihood assigned to tokens never seen in training.
    log_unseen_pos: f64,
    log_unseen_neg: f64,
}

impl SentimentModel {
    /// Trains a unigram model from segmented positive and negative
    /// documents.
    ///
    /// # Panics
    /// Panics if either corpus is empty — a one-sided sentiment model is
    /// meaningless and would silently score everything identically.
    pub fn train(positive_docs: &[Vec<String>], negative_docs: &[Vec<String>]) -> Self {
        Self::train_with_order(positive_docs, negative_docs, FeatureOrder::Unigram)
    }

    /// Trains with an explicit feature order.
    ///
    /// # Panics
    /// Panics if either corpus is empty.
    pub fn train_with_order(
        positive_docs: &[Vec<String>],
        negative_docs: &[Vec<String>],
        order: FeatureOrder,
    ) -> Self {
        let pos: Vec<Vec<String>> =
            positive_docs.iter().map(|d| feature_stream(d, order)).collect();
        let neg: Vec<Vec<String>> =
            negative_docs.iter().map(|d| feature_stream(d, order)).collect();
        Self::from_streams(&pos, &neg, order)
    }

    /// [`SentimentModel::train`] with feature extraction fanned out over
    /// worker threads. Bit-identical to the serial path at any thread
    /// count: only per-document feature-stream generation runs in
    /// parallel; interning and counting stay serial in input order.
    ///
    /// # Panics
    /// Panics if either corpus is empty.
    pub fn train_par(
        positive_docs: &[Vec<String>],
        negative_docs: &[Vec<String>],
        par: cats_par::Parallelism,
    ) -> Self {
        Self::train_with_order_par(positive_docs, negative_docs, FeatureOrder::Unigram, par)
    }

    /// [`SentimentModel::train_with_order`] with parallel feature
    /// extraction. See [`SentimentModel::train_par`].
    ///
    /// # Panics
    /// Panics if either corpus is empty.
    pub fn train_with_order_par(
        positive_docs: &[Vec<String>],
        negative_docs: &[Vec<String>],
        order: FeatureOrder,
        par: cats_par::Parallelism,
    ) -> Self {
        let pos = cats_par::map_chunked(par, positive_docs, |d| feature_stream(d, order));
        let neg = cats_par::map_chunked(par, negative_docs, |d| feature_stream(d, order));
        Self::from_streams(&pos, &neg, order)
    }

    /// Fits likelihoods from per-document feature streams (already
    /// expanded by [`feature_stream`]). Interning happens here, serially,
    /// positive documents first — the vocabulary layout is a function of
    /// document order alone.
    fn from_streams(
        pos_streams: &[Vec<String>],
        neg_streams: &[Vec<String>],
        order: FeatureOrder,
    ) -> Self {
        assert!(
            !pos_streams.is_empty() && !neg_streams.is_empty(),
            "sentiment training requires both positive and negative documents"
        );
        let mut vocab = Vocab::new();
        let mut pos_counts: Vec<u64> = Vec::new();
        let mut neg_counts: Vec<u64> = Vec::new();

        let tally = |streams: &[Vec<String>],
                     vocab: &mut Vocab,
                     counts: &mut Vec<u64>,
                     other: &mut Vec<u64>| {
            for stream in streams {
                for tok in stream {
                    let id = vocab.intern(tok);
                    if id.index() >= counts.len() {
                        counts.resize(id.index() + 1, 0);
                        other.resize(id.index() + 1, 0);
                    }
                    counts[id.index()] += 1;
                }
            }
        };
        tally(pos_streams, &mut vocab, &mut pos_counts, &mut neg_counts);
        tally(neg_streams, &mut vocab, &mut neg_counts, &mut pos_counts);
        let v = vocab.len();
        pos_counts.resize(v, 0);
        neg_counts.resize(v, 0);

        let pos_total: u64 = pos_counts.iter().sum();
        let neg_total: u64 = neg_counts.iter().sum();
        let pos_denom = pos_total as f64 + ALPHA * (v as f64 + 1.0);
        let neg_denom = neg_total as f64 + ALPHA * (v as f64 + 1.0);

        let log_pos = pos_counts.iter().map(|&c| ((c as f64 + ALPHA) / pos_denom).ln()).collect();
        let log_neg = neg_counts.iter().map(|&c| ((c as f64 + ALPHA) / neg_denom).ln()).collect();

        let n_docs = (pos_streams.len() + neg_streams.len()) as f64;
        Self {
            order,
            vocab,
            log_pos,
            log_neg,
            log_prior_pos: (pos_streams.len() as f64 / n_docs).ln(),
            log_prior_neg: (neg_streams.len() as f64 / n_docs).ln(),
            log_unseen_pos: (ALPHA / pos_denom).ln(),
            log_unseen_neg: (ALPHA / neg_denom).ln(),
        }
    }

    /// Scores a segmented comment: `P(positive)` with length-normalized
    /// token likelihoods. An empty comment scores exactly 0.5.
    ///
    /// The log-likelihood sums run in explicit 8-wide lane accumulators
    /// with a fixed pairwise fold — the lane each feature lands in is a
    /// function of its position alone, so the reduction order (and the
    /// score, to the bit) depends only on the feature stream.
    pub fn score(&self, tokens: &[String]) -> f64 {
        if tokens.is_empty() {
            return 0.5;
        }
        let mut lp_acc = [0.0f64; 8];
        let mut ln_acc = [0.0f64; 8];
        let mut n_feats = 0usize;
        for (f, tok) in feature_stream(tokens, self.order).iter().enumerate() {
            n_feats += 1;
            let (p, q) = match self.vocab.id(tok) {
                Some(TokenId(i)) => (self.log_pos[i as usize], self.log_neg[i as usize]),
                None => (self.log_unseen_pos, self.log_unseen_neg),
            };
            lp_acc[f % 8] += p;
            ln_acc[f % 8] += q;
        }
        let fold = |a: [f64; 8]| {
            let b0 = a[0] + a[4];
            let b1 = a[1] + a[5];
            let b2 = a[2] + a[6];
            let b3 = a[3] + a[7];
            (b0 + b2) + (b1 + b3)
        };
        let (lp, ln) = (fold(lp_acc), fold(ln_acc));
        // Geometric-mean per-feature likelihood, then the prior once.
        let n = n_feats.max(1) as f64;
        let zp = lp / n + self.log_prior_pos / n;
        let zn = ln / n + self.log_prior_neg / n;
        // σ(T·(zp − zn)) == tempered exp(zp) / (exp(zp) + exp(zn)),
        // overflow-safe.
        1.0 / (1.0 + (TEMPERATURE * (zn - zp)).exp())
    }

    /// Scores raw text, segmenting it first.
    pub fn score_text(&self, text: &str, segmenter: &impl Segmenter) -> f64 {
        self.score(&segmenter.segment(text))
    }

    /// Average score over many segmented comments (0.5 for an empty slice,
    /// matching the empty-comment convention).
    pub fn average_score(&self, comments: &[Vec<String>]) -> f64 {
        if comments.is_empty() {
            return 0.5;
        }
        comments.iter().map(|c| self.score(c)).sum::<f64>() / comments.len() as f64
    }

    /// Vocabulary size seen during training.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes the model as a flat binary payload (the `sentiment` section
    /// of a `CATS-IO2` snapshot): codec version, feature order, the
    /// vocabulary as `(word, count)` entries in id order, then the
    /// log-likelihood arrays and scalars. The encoding is canonical —
    /// decode followed by encode reproduces the bytes exactly.
    pub fn to_io2_payload(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u32(SENTIMENT_CODEC_VERSION);
        e.u8(match self.order {
            FeatureOrder::Unigram => 0,
            FeatureOrder::UnigramBigram => 1,
        });
        e.u64(self.vocab.len() as u64);
        for (_, word, count) in self.vocab.iter() {
            e.str(word);
            e.u64(count);
        }
        e.f64s(&self.log_pos);
        e.f64s(&self.log_neg);
        e.f64(self.log_prior_pos);
        e.f64(self.log_prior_neg);
        e.f64(self.log_unseen_pos);
        e.f64(self.log_unseen_neg);
        e.into_bytes()
    }

    /// Decodes a payload produced by [`SentimentModel::to_io2_payload`].
    pub fn from_io2_payload(bytes: &[u8]) -> Result<Self, String> {
        let mut d = Dec::new(bytes);
        let version = d.u32()?;
        if version != SENTIMENT_CODEC_VERSION {
            return Err(format!(
                "sentiment codec version {version} is newer than supported \
                 ({SENTIMENT_CODEC_VERSION})"
            ));
        }
        let order = match d.u8()? {
            0 => FeatureOrder::Unigram,
            1 => FeatureOrder::UnigramBigram,
            o => return Err(format!("unknown sentiment feature order {o}")),
        };
        let n_words = d.u64()? as usize;
        if n_words > bytes.len() {
            return Err(format!("sentiment vocab count {n_words} exceeds payload size"));
        }
        let mut entries = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            let word = d.str()?;
            let count = d.u64()?;
            entries.push((word, count));
        }
        let vocab = Vocab::from_entries(entries)?;
        let log_pos = d.f64s()?;
        let log_neg = d.f64s()?;
        if log_pos.len() != n_words || log_neg.len() != n_words {
            return Err(format!(
                "sentiment likelihood arrays ({}, {}) do not match vocab size {n_words}",
                log_pos.len(),
                log_neg.len()
            ));
        }
        let model = Self {
            order,
            vocab,
            log_pos,
            log_neg,
            log_prior_pos: d.f64()?,
            log_prior_neg: d.f64()?,
            log_unseen_pos: d.f64()?,
            log_unseen_neg: d.f64()?,
        };
        if d.remaining() != 0 {
            return Err(format!("{} trailing bytes after sentiment payload", d.remaining()));
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts.iter().map(|t| t.split_whitespace().map(|w| w.to_string()).collect()).collect()
    }

    fn model() -> SentimentModel {
        SentimentModel::train(
            &docs(&[
                "good great item love it",
                "great quality good price",
                "love this good good",
                "fine item works great",
            ]),
            &docs(&[
                "bad awful broken return",
                "terrible bad quality awful",
                "broken on arrival bad",
                "worst item terrible return",
            ]),
        )
    }

    #[test]
    fn positive_text_scores_high() {
        let m = model();
        let s =
            m.score(&"good great love".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!(s > 0.8, "score {s}");
    }

    #[test]
    fn negative_text_scores_low() {
        let m = model();
        let s =
            m.score(&"bad awful broken".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn mixed_text_scores_middling() {
        let m = model();
        let s = m.score(&"good bad".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!((0.25..0.75).contains(&s), "score {s}");
    }

    #[test]
    fn unseen_only_text_is_near_half() {
        let m = model();
        let s = m.score(&"zzz qqq xxx".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!((0.4..0.6).contains(&s), "score {s}");
    }

    #[test]
    fn empty_comment_is_exactly_half() {
        assert_eq!(model().score(&[]), 0.5);
    }

    #[test]
    fn scores_always_in_unit_interval() {
        let m = model();
        for text in ["good", "bad", "good good good good good good good good", "zzz", ""] {
            let toks: Vec<String> = text.split_whitespace().map(String::from).collect();
            let s = m.score(&toks);
            assert!((0.0..=1.0).contains(&s), "{text} -> {s}");
        }
    }

    #[test]
    fn long_positive_does_not_fully_saturate_vs_short() {
        // Length normalization: 50 repetitions should not push the score
        // meaningfully past a handful of repetitions.
        let m = model();
        let short: Vec<String> = vec!["good".into(); 3];
        let long: Vec<String> = vec!["good".into(); 50];
        let (ss, sl) = (m.score(&short), m.score(&long));
        assert!((ss - sl).abs() < 0.05, "short {ss} long {sl}");
    }

    #[test]
    fn average_score_averages() {
        let m = model();
        let cs = vec![
            "good great".split_whitespace().map(String::from).collect::<Vec<_>>(),
            "bad awful".split_whitespace().map(String::from).collect::<Vec<_>>(),
        ];
        let avg = m.average_score(&cs);
        let manual = (m.score(&cs[0]) + m.score(&cs[1])) / 2.0;
        assert!((avg - manual).abs() < 1e-12);
        assert_eq!(m.average_score(&[]), 0.5);
    }

    #[test]
    fn score_text_segments_first() {
        use cats_text::WhitespaceSegmenter;
        let m = model();
        let a = m.score_text("good great love", &WhitespaceSegmenter);
        let toks: Vec<String> = "good great love".split_whitespace().map(String::from).collect();
        assert!((a - m.score(&toks)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires both")]
    fn one_sided_training_rejected() {
        SentimentModel::train(&docs(&["good"]), &[]);
    }

    #[test]
    fn class_imbalance_shifts_prior_only_slightly_after_normalization() {
        // 9:1 positive-heavy training set; a neutral unseen comment should
        // still land near 0.5 because the prior is also length-normalized.
        let pos: Vec<Vec<String>> = (0..9).map(|_| vec!["good".to_string()]).collect();
        let neg = vec![vec!["bad".to_string()]];
        let m = SentimentModel::train(&pos, &neg);
        let s = m.score(&["zzz".to_string(), "yyy".to_string()]);
        assert!((0.35..0.65).contains(&s), "score {s}");
    }

    #[test]
    fn bigram_model_separates_negated_phrases() {
        // "bu hao" (not good) is negative; "hao" alone positive. A unigram
        // model sees "hao" in both classes; the bigram feature resolves it.
        let pos: Vec<Vec<String>> =
            (0..20).map(|_| docs(&["hao hen hao zhen hao"]).remove(0)).collect();
        let neg: Vec<Vec<String>> =
            (0..20).map(|_| docs(&["bu hao zhen bu hao tui"]).remove(0)).collect();
        let uni = SentimentModel::train_with_order(&pos, &neg, FeatureOrder::Unigram);
        let bi = SentimentModel::train_with_order(&pos, &neg, FeatureOrder::UnigramBigram);
        let probe: Vec<String> = "bu hao".split_whitespace().map(String::from).collect();
        assert!(
            bi.score(&probe) < uni.score(&probe) + 1e-9,
            "bigram model should be at least as negative on 'bu hao': uni {} bi {}",
            uni.score(&probe),
            bi.score(&probe)
        );
        assert!(bi.score(&probe) < 0.4, "{}", bi.score(&probe));
    }

    #[test]
    fn bigram_model_scores_stay_bounded() {
        let m = SentimentModel::train_with_order(
            &docs(&["good great", "great fine"]),
            &docs(&["bad awful", "awful poor"]),
            FeatureOrder::UnigramBigram,
        );
        for text in ["good great", "bad", "zzz yyy xxx", ""] {
            let toks: Vec<String> = text.split_whitespace().map(String::from).collect();
            let s = m.score(&toks);
            assert!((0.0..=1.0).contains(&s) && s.is_finite(), "{text} -> {s}");
        }
    }

    #[test]
    fn parallel_training_is_bit_identical_to_serial() {
        let pos = docs(&["good great item", "love this good", "fine works great", "great price"]);
        let neg = docs(&["bad awful broken", "terrible bad", "worst item return", "broken bad"]);
        for order in [FeatureOrder::Unigram, FeatureOrder::UnigramBigram] {
            let serial = SentimentModel::train_with_order(&pos, &neg, order);
            for threads in [1usize, 2, 8] {
                let par = cats_par::Parallelism { threads, deterministic: true };
                let parallel = SentimentModel::train_with_order_par(&pos, &neg, order, par);
                assert_eq!(
                    serde_json::to_string(&serial).unwrap(),
                    serde_json::to_string(&parallel).unwrap(),
                    "order {order:?} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn io2_payload_roundtrips_bitwise_and_is_canonical() {
        let pos = docs(&["good great item", "love this good", "fine works great"]);
        let neg = docs(&["bad awful broken", "terrible bad", "worst item return"]);
        let probe: Vec<String> =
            "good bad zzz great".split_whitespace().map(String::from).collect();
        for order in [FeatureOrder::Unigram, FeatureOrder::UnigramBigram] {
            let m = SentimentModel::train_with_order(&pos, &neg, order);
            let bytes = m.to_io2_payload();
            let m2 = SentimentModel::from_io2_payload(&bytes).unwrap();
            assert_eq!(m.score(&probe).to_bits(), m2.score(&probe).to_bits(), "{order:?}");
            assert_eq!(m.vocab_len(), m2.vocab_len());
            assert_eq!(bytes, m2.to_io2_payload(), "canonical encoding {order:?}");
        }
    }

    #[test]
    fn io2_payload_rejects_corruption() {
        let m = model();
        let bytes = m.to_io2_payload();
        // Truncation anywhere must error, never panic.
        for cut in [0, 1, 4, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(SentimentModel::from_io2_payload(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Future codec version.
        let mut future = bytes.clone();
        future[0] = 99;
        let err = SentimentModel::from_io2_payload(&future).unwrap_err();
        assert!(err.contains("newer than supported"), "{err}");
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(SentimentModel::from_io2_payload(&long).unwrap_err().contains("trailing"));
    }

    #[test]
    fn serde_roundtrip_preserves_scores() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let m2: SentimentModel = serde_json::from_str(&json).unwrap();
        let toks: Vec<String> = "good bad great".split_whitespace().map(String::from).collect();
        assert_eq!(m.score(&toks), m2.score(&toks));
    }
}
