//! # cats-sentiment — comment sentiment substrate
//!
//! The paper's semantic analyzer scores every comment with a pre-trained
//! sentiment model (SnowNLP, trained on large-scale e-commerce review
//! data), producing the `averageSentiment` feature whose class-conditional
//! distributions (Fig 1) separate fraud items (mass near 1.0) from normal
//! items (mass near 0.7).
//!
//! SnowNLP's sentiment component is a multinomial Naive Bayes classifier
//! over segmented words, returning `P(positive | comment)`. This crate is
//! the same model class built from scratch:
//!
//! * [`SentimentModel::train`] fits token likelihoods with Laplace
//!   smoothing from positive- and negative-labeled review corpora;
//! * [`SentimentModel::score`] returns `P(positive)` ∈ [0, 1], computed
//!   with *length-normalized* log-likelihoods (the geometric-mean
//!   per-token likelihood). Normalization keeps long comments from
//!   saturating to exactly 0/1, matching the smooth densities of Fig 1.

use cats_text::{Segmenter, TokenId, Vocab};
use serde::{Deserialize, Serialize};

/// Laplace smoothing pseudo-count.
const ALPHA: f64 = 1.0;

/// Sharpness of the length-normalized posterior. The per-token average
/// log-likelihood ratio is multiplied by this before the sigmoid; it trades
/// off the saturation of the raw NB posterior (which drives every long
/// comment to exactly 0/1) against the washed-out scores of the pure
/// geometric mean. 2.5 reproduces the paper's Fig 1 shape: promotional
/// comments land near 1.0, organic mildly-positive ones near 0.7.
const TEMPERATURE: f64 = 2.5;

/// Emits the model's features of a segmented comment: the tokens
/// themselves, plus joined adjacent pairs in bigram mode.
fn feature_stream(tokens: &[String], order: FeatureOrder) -> Vec<String> {
    match order {
        FeatureOrder::Unigram => tokens.to_vec(),
        FeatureOrder::UnigramBigram => {
            let mut out = Vec::with_capacity(tokens.len() * 2);
            out.extend(tokens.iter().cloned());
            out.extend(tokens.windows(2).map(|w| format!("{}\u{1}{}", w[0], w[1])));
            out
        }
    }
}

/// Feature order used by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureOrder {
    /// Bag of single tokens (SnowNLP's model).
    Unigram,
    /// Single tokens plus adjacent-pair features — captures negation-ish
    /// patterns ("bu hao") a unigram model conflates.
    UnigramBigram,
}

impl Default for FeatureOrder {
    fn default() -> Self {
        FeatureOrder::Unigram
    }
}

fn default_order() -> FeatureOrder {
    FeatureOrder::Unigram
}

/// A trained multinomial Naive Bayes sentiment scorer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SentimentModel {
    #[serde(default = "default_order")]
    order: FeatureOrder,
    vocab: Vocab,
    /// log P(token | positive), indexed by `TokenId`.
    log_pos: Vec<f64>,
    /// log P(token | negative).
    log_neg: Vec<f64>,
    /// log prior of the positive class.
    log_prior_pos: f64,
    log_prior_neg: f64,
    /// log-likelihood assigned to tokens never seen in training.
    log_unseen_pos: f64,
    log_unseen_neg: f64,
}

impl SentimentModel {
    /// Trains a unigram model from segmented positive and negative
    /// documents.
    ///
    /// # Panics
    /// Panics if either corpus is empty — a one-sided sentiment model is
    /// meaningless and would silently score everything identically.
    pub fn train(positive_docs: &[Vec<String>], negative_docs: &[Vec<String>]) -> Self {
        Self::train_with_order(positive_docs, negative_docs, FeatureOrder::Unigram)
    }

    /// Trains with an explicit feature order.
    ///
    /// # Panics
    /// Panics if either corpus is empty.
    pub fn train_with_order(
        positive_docs: &[Vec<String>],
        negative_docs: &[Vec<String>],
        order: FeatureOrder,
    ) -> Self {
        let pos: Vec<Vec<String>> =
            positive_docs.iter().map(|d| feature_stream(d, order)).collect();
        let neg: Vec<Vec<String>> =
            negative_docs.iter().map(|d| feature_stream(d, order)).collect();
        Self::from_streams(&pos, &neg, order)
    }

    /// [`SentimentModel::train`] with feature extraction fanned out over
    /// worker threads. Bit-identical to the serial path at any thread
    /// count: only per-document feature-stream generation runs in
    /// parallel; interning and counting stay serial in input order.
    ///
    /// # Panics
    /// Panics if either corpus is empty.
    pub fn train_par(
        positive_docs: &[Vec<String>],
        negative_docs: &[Vec<String>],
        par: cats_par::Parallelism,
    ) -> Self {
        Self::train_with_order_par(positive_docs, negative_docs, FeatureOrder::Unigram, par)
    }

    /// [`SentimentModel::train_with_order`] with parallel feature
    /// extraction. See [`SentimentModel::train_par`].
    ///
    /// # Panics
    /// Panics if either corpus is empty.
    pub fn train_with_order_par(
        positive_docs: &[Vec<String>],
        negative_docs: &[Vec<String>],
        order: FeatureOrder,
        par: cats_par::Parallelism,
    ) -> Self {
        let pos = cats_par::map_chunked(par, positive_docs, |d| feature_stream(d, order));
        let neg = cats_par::map_chunked(par, negative_docs, |d| feature_stream(d, order));
        Self::from_streams(&pos, &neg, order)
    }

    /// Fits likelihoods from per-document feature streams (already
    /// expanded by [`feature_stream`]). Interning happens here, serially,
    /// positive documents first — the vocabulary layout is a function of
    /// document order alone.
    fn from_streams(
        pos_streams: &[Vec<String>],
        neg_streams: &[Vec<String>],
        order: FeatureOrder,
    ) -> Self {
        assert!(
            !pos_streams.is_empty() && !neg_streams.is_empty(),
            "sentiment training requires both positive and negative documents"
        );
        let mut vocab = Vocab::new();
        let mut pos_counts: Vec<u64> = Vec::new();
        let mut neg_counts: Vec<u64> = Vec::new();

        let tally = |streams: &[Vec<String>],
                     vocab: &mut Vocab,
                     counts: &mut Vec<u64>,
                     other: &mut Vec<u64>| {
            for stream in streams {
                for tok in stream {
                    let id = vocab.intern(tok);
                    if id.index() >= counts.len() {
                        counts.resize(id.index() + 1, 0);
                        other.resize(id.index() + 1, 0);
                    }
                    counts[id.index()] += 1;
                }
            }
        };
        tally(pos_streams, &mut vocab, &mut pos_counts, &mut neg_counts);
        tally(neg_streams, &mut vocab, &mut neg_counts, &mut pos_counts);
        let v = vocab.len();
        pos_counts.resize(v, 0);
        neg_counts.resize(v, 0);

        let pos_total: u64 = pos_counts.iter().sum();
        let neg_total: u64 = neg_counts.iter().sum();
        let pos_denom = pos_total as f64 + ALPHA * (v as f64 + 1.0);
        let neg_denom = neg_total as f64 + ALPHA * (v as f64 + 1.0);

        let log_pos = pos_counts.iter().map(|&c| ((c as f64 + ALPHA) / pos_denom).ln()).collect();
        let log_neg = neg_counts.iter().map(|&c| ((c as f64 + ALPHA) / neg_denom).ln()).collect();

        let n_docs = (pos_streams.len() + neg_streams.len()) as f64;
        Self {
            order,
            vocab,
            log_pos,
            log_neg,
            log_prior_pos: (pos_streams.len() as f64 / n_docs).ln(),
            log_prior_neg: (neg_streams.len() as f64 / n_docs).ln(),
            log_unseen_pos: (ALPHA / pos_denom).ln(),
            log_unseen_neg: (ALPHA / neg_denom).ln(),
        }
    }

    /// Scores a segmented comment: `P(positive)` with length-normalized
    /// token likelihoods. An empty comment scores exactly 0.5.
    pub fn score(&self, tokens: &[String]) -> f64 {
        if tokens.is_empty() {
            return 0.5;
        }
        let mut lp = 0.0;
        let mut ln = 0.0;
        let mut n_feats = 0usize;
        for tok in feature_stream(tokens, self.order) {
            n_feats += 1;
            match self.vocab.id(&tok) {
                Some(TokenId(i)) => {
                    lp += self.log_pos[i as usize];
                    ln += self.log_neg[i as usize];
                }
                None => {
                    lp += self.log_unseen_pos;
                    ln += self.log_unseen_neg;
                }
            }
        }
        // Geometric-mean per-feature likelihood, then the prior once.
        let n = n_feats.max(1) as f64;
        let zp = lp / n + self.log_prior_pos / n;
        let zn = ln / n + self.log_prior_neg / n;
        // σ(T·(zp − zn)) == tempered exp(zp) / (exp(zp) + exp(zn)),
        // overflow-safe.
        1.0 / (1.0 + (TEMPERATURE * (zn - zp)).exp())
    }

    /// Scores raw text, segmenting it first.
    pub fn score_text(&self, text: &str, segmenter: &impl Segmenter) -> f64 {
        self.score(&segmenter.segment(text))
    }

    /// Average score over many segmented comments (0.5 for an empty slice,
    /// matching the empty-comment convention).
    pub fn average_score(&self, comments: &[Vec<String>]) -> f64 {
        if comments.is_empty() {
            return 0.5;
        }
        comments.iter().map(|c| self.score(c)).sum::<f64>() / comments.len() as f64
    }

    /// Vocabulary size seen during training.
    pub fn vocab_len(&self) -> usize {
        self.vocab.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(texts: &[&str]) -> Vec<Vec<String>> {
        texts.iter().map(|t| t.split_whitespace().map(|w| w.to_string()).collect()).collect()
    }

    fn model() -> SentimentModel {
        SentimentModel::train(
            &docs(&[
                "good great item love it",
                "great quality good price",
                "love this good good",
                "fine item works great",
            ]),
            &docs(&[
                "bad awful broken return",
                "terrible bad quality awful",
                "broken on arrival bad",
                "worst item terrible return",
            ]),
        )
    }

    #[test]
    fn positive_text_scores_high() {
        let m = model();
        let s =
            m.score(&"good great love".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!(s > 0.8, "score {s}");
    }

    #[test]
    fn negative_text_scores_low() {
        let m = model();
        let s =
            m.score(&"bad awful broken".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn mixed_text_scores_middling() {
        let m = model();
        let s = m.score(&"good bad".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!((0.25..0.75).contains(&s), "score {s}");
    }

    #[test]
    fn unseen_only_text_is_near_half() {
        let m = model();
        let s = m.score(&"zzz qqq xxx".split_whitespace().map(String::from).collect::<Vec<_>>());
        assert!((0.4..0.6).contains(&s), "score {s}");
    }

    #[test]
    fn empty_comment_is_exactly_half() {
        assert_eq!(model().score(&[]), 0.5);
    }

    #[test]
    fn scores_always_in_unit_interval() {
        let m = model();
        for text in ["good", "bad", "good good good good good good good good", "zzz", ""] {
            let toks: Vec<String> = text.split_whitespace().map(String::from).collect();
            let s = m.score(&toks);
            assert!((0.0..=1.0).contains(&s), "{text} -> {s}");
        }
    }

    #[test]
    fn long_positive_does_not_fully_saturate_vs_short() {
        // Length normalization: 50 repetitions should not push the score
        // meaningfully past a handful of repetitions.
        let m = model();
        let short: Vec<String> = vec!["good".into(); 3];
        let long: Vec<String> = vec!["good".into(); 50];
        let (ss, sl) = (m.score(&short), m.score(&long));
        assert!((ss - sl).abs() < 0.05, "short {ss} long {sl}");
    }

    #[test]
    fn average_score_averages() {
        let m = model();
        let cs = vec![
            "good great".split_whitespace().map(String::from).collect::<Vec<_>>(),
            "bad awful".split_whitespace().map(String::from).collect::<Vec<_>>(),
        ];
        let avg = m.average_score(&cs);
        let manual = (m.score(&cs[0]) + m.score(&cs[1])) / 2.0;
        assert!((avg - manual).abs() < 1e-12);
        assert_eq!(m.average_score(&[]), 0.5);
    }

    #[test]
    fn score_text_segments_first() {
        use cats_text::WhitespaceSegmenter;
        let m = model();
        let a = m.score_text("good great love", &WhitespaceSegmenter);
        let toks: Vec<String> = "good great love".split_whitespace().map(String::from).collect();
        assert!((a - m.score(&toks)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires both")]
    fn one_sided_training_rejected() {
        SentimentModel::train(&docs(&["good"]), &[]);
    }

    #[test]
    fn class_imbalance_shifts_prior_only_slightly_after_normalization() {
        // 9:1 positive-heavy training set; a neutral unseen comment should
        // still land near 0.5 because the prior is also length-normalized.
        let pos: Vec<Vec<String>> = (0..9).map(|_| vec!["good".to_string()]).collect();
        let neg = vec![vec!["bad".to_string()]];
        let m = SentimentModel::train(&pos, &neg);
        let s = m.score(&["zzz".to_string(), "yyy".to_string()]);
        assert!((0.35..0.65).contains(&s), "score {s}");
    }

    #[test]
    fn bigram_model_separates_negated_phrases() {
        // "bu hao" (not good) is negative; "hao" alone positive. A unigram
        // model sees "hao" in both classes; the bigram feature resolves it.
        let pos: Vec<Vec<String>> =
            (0..20).map(|_| docs(&["hao hen hao zhen hao"]).remove(0)).collect();
        let neg: Vec<Vec<String>> =
            (0..20).map(|_| docs(&["bu hao zhen bu hao tui"]).remove(0)).collect();
        let uni = SentimentModel::train_with_order(&pos, &neg, FeatureOrder::Unigram);
        let bi = SentimentModel::train_with_order(&pos, &neg, FeatureOrder::UnigramBigram);
        let probe: Vec<String> = "bu hao".split_whitespace().map(String::from).collect();
        assert!(
            bi.score(&probe) < uni.score(&probe) + 1e-9,
            "bigram model should be at least as negative on 'bu hao': uni {} bi {}",
            uni.score(&probe),
            bi.score(&probe)
        );
        assert!(bi.score(&probe) < 0.4, "{}", bi.score(&probe));
    }

    #[test]
    fn bigram_model_scores_stay_bounded() {
        let m = SentimentModel::train_with_order(
            &docs(&["good great", "great fine"]),
            &docs(&["bad awful", "awful poor"]),
            FeatureOrder::UnigramBigram,
        );
        for text in ["good great", "bad", "zzz yyy xxx", ""] {
            let toks: Vec<String> = text.split_whitespace().map(String::from).collect();
            let s = m.score(&toks);
            assert!((0.0..=1.0).contains(&s) && s.is_finite(), "{text} -> {s}");
        }
    }

    #[test]
    fn parallel_training_is_bit_identical_to_serial() {
        let pos = docs(&["good great item", "love this good", "fine works great", "great price"]);
        let neg = docs(&["bad awful broken", "terrible bad", "worst item return", "broken bad"]);
        for order in [FeatureOrder::Unigram, FeatureOrder::UnigramBigram] {
            let serial = SentimentModel::train_with_order(&pos, &neg, order);
            for threads in [1usize, 2, 8] {
                let par = cats_par::Parallelism { threads, deterministic: true };
                let parallel = SentimentModel::train_with_order_par(&pos, &neg, order, par);
                assert_eq!(
                    serde_json::to_string(&serial).unwrap(),
                    serde_json::to_string(&parallel).unwrap(),
                    "order {order:?} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn serde_roundtrip_preserves_scores() {
        let m = model();
        let json = serde_json::to_string(&m).unwrap();
        let m2: SentimentModel = serde_json::from_str(&json).unwrap();
        let toks: Vec<String> = "good bad great".split_whitespace().map(String::from).collect();
        assert_eq!(m.score(&toks), m2.score(&toks));
    }
}
