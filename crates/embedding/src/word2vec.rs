//! Skip-gram word2vec with negative sampling, from scratch.
//!
//! Implements the SGNS objective of Mikolov et al. (the paper's reference 10):
//! for each (center, context) pair inside a dynamic window, maximize
//! `log σ(v·u_ctx) + Σ_k log σ(−v·u_neg)` over `k` negatives drawn from the
//! unigram distribution raised to 0.75. Frequent words are subsampled with
//! the standard `1 − sqrt(t / f)` discard rule. Training is plain SGD with
//! linearly decaying learning rate, deterministic under a seed.
//!
//! # Parallel training
//!
//! Three schedules, selected by [`Word2VecConfig::parallelism`]:
//!
//! - **Serial** — small corpora (fewer than `DET_MIN_SENTENCES` sentences)
//!   or a single thread: the historical reference loop, bit-identical to
//!   the pre-parallel implementation.
//! - **Deterministic sharded** (the default for large corpora) — each
//!   epoch snapshots the weights, trains a *fixed* number of contiguous
//!   sentence shards independently (per-shard RNG seeded from
//!   `(seed, epoch, shard)`), then merges each shard's delta against the
//!   snapshot back into the shared weights in shard order behind the
//!   epoch barrier. The schedule is a pure function of corpus and seed, so
//!   results are identical at every thread count — including one.
//! - **Hogwild** (`deterministic: false`) — workers update shared
//!   `syn0`/`syn1` lock-free through racy bit-cast read-modify-writes, as
//!   in the reference C implementation; SGD tolerates the occasional lost
//!   update. Fastest, but run-to-run results differ with more than one
//!   thread.

use cats_par::Parallelism;
use cats_text::{Corpus, TokenId, Vocab};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Hyperparameters of the trainer.
#[derive(Debug, Clone, Copy)]
pub struct Word2VecConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Maximum window radius (the effective radius is sampled uniformly in
    /// `1..=window` per center, as in the reference implementation).
    pub window: usize,
    /// Negative samples per (center, context) pair.
    pub negative: usize,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 1e-4 of itself).
    pub initial_lr: f32,
    /// Subsampling threshold `t`; 0 disables subsampling.
    pub subsample: f64,
    /// Words with fewer occurrences are skipped entirely.
    pub min_count: u64,
    /// RNG seed.
    pub seed: u64,
    /// Parallel schedule (see the module docs). The deterministic flag
    /// chooses sharded-with-barrier over Hogwild.
    pub parallelism: Parallelism,
}

impl Default for Word2VecConfig {
    fn default() -> Self {
        Self {
            dim: 48,
            window: 5,
            negative: 5,
            epochs: 3,
            initial_lr: 0.025,
            subsample: 1e-4,
            min_count: 3,
            seed: 1,
            parallelism: Parallelism::default(),
        }
    }
}

/// Shard count of the deterministic parallel schedule. Fixed — rather than
/// derived from the thread count — so the schedule (and therefore the
/// trained vectors) is identical however many workers execute it.
const DET_SHARDS: usize = 8;
/// Minimum corpus size (in sentences) before the deterministic path
/// shards. Below this the exact historical serial schedule runs: sharding
/// tiny corpora would change results for no wall-clock win.
const DET_MIN_SENTENCES: usize = 4096;

/// Size of the pre-built negative-sampling table.
const UNIGRAM_TABLE_SIZE: usize = 1 << 20;
/// Domain bound of the precomputed sigmoid table.
const SIGMOID_BOUND: f32 = 6.0;
const SIGMOID_TABLE_SIZE: usize = 512;

/// A trained embedding: one input vector per vocabulary word.
/// Serializable, so a model trained once on a large corpus can ship with
/// a deployed detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    dim: usize,
    vectors: Vec<f32>, // vocab_len × dim, row-major
    vocab_words: Vec<String>,
    trained: Vec<bool>, // false for words below min_count
}

impl Embedding {
    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vocabulary rows (including untrained ones).
    pub fn len(&self) -> usize {
        self.vocab_words.len()
    }

    /// Whether the embedding has no rows.
    pub fn is_empty(&self) -> bool {
        self.vocab_words.is_empty()
    }

    /// The vector of `word`, if the word was in the training vocabulary
    /// *and* met `min_count`.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        let idx = self.vocab_words.iter().position(|w| w == word)?;
        if !self.trained[idx] {
            return None;
        }
        Some(&self.vectors[idx * self.dim..(idx + 1) * self.dim])
    }

    /// Cosine similarity between two words, if both are trained.
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        Some(cosine(self.vector(a)?, self.vector(b)?))
    }

    /// The `k` nearest trained words to `word` by cosine similarity,
    /// excluding `word` itself. Returns `(word, similarity)` pairs, most
    /// similar first. `None` if `word` is untrained/unknown.
    pub fn nearest(&self, word: &str, k: usize) -> Option<Vec<(&str, f32)>> {
        let v = self.vector(word)?;
        Some(self.nearest_to_vector(v, k, Some(word)))
    }

    /// The `k` nearest trained words to an arbitrary query vector.
    pub fn nearest_to_vector(
        &self,
        query: &[f32],
        k: usize,
        exclude: Option<&str>,
    ) -> Vec<(&str, f32)> {
        let mut scored: Vec<(&str, f32)> = self
            .vocab_words
            .iter()
            .enumerate()
            .filter(|(i, w)| self.trained[*i] && Some(w.as_str()) != exclude)
            .map(|(i, w)| {
                let row = &self.vectors[i * self.dim..(i + 1) * self.dim];
                (w.as_str(), cosine(query, row))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }

    /// Solves the classic analogy query `a − b + c ≈ ?`: returns the `k`
    /// trained words nearest to the offset vector, excluding the three
    /// query words. `None` if any query word is untrained/unknown.
    pub fn analogy(&self, a: &str, b: &str, c: &str, k: usize) -> Option<Vec<(&str, f32)>> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        let vc = self.vector(c)?;
        let query: Vec<f32> = va.iter().zip(vb).zip(vc).map(|((&x, &y), &z)| x - y + z).collect();
        let hits = self
            .nearest_to_vector(&query, k + 3, None)
            .into_iter()
            .filter(|(w, _)| *w != a && *w != b && *w != c)
            .take(k)
            .collect();
        Some(hits)
    }

    /// Iterates `(word, trained)` pairs in vocabulary order.
    pub fn words(&self) -> impl Iterator<Item = (&str, bool)> {
        self.vocab_words.iter().zip(&self.trained).map(|(w, &t)| (w.as_str(), t))
    }
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
///
/// Computed with the fused 8-wide kernel ([`crate::simd::dot_norms`]):
/// one traversal yields dot product and both squared norms, with a fixed
/// lane-fold reduction order that depends only on the vector length.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let (dot, na, nb) = crate::simd::dot_norms(a, b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// The SGNS trainer.
pub struct Word2VecTrainer {
    config: Word2VecConfig,
}

impl Word2VecTrainer {
    /// Creates a trainer with `config`.
    pub fn new(config: Word2VecConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.window > 0, "window must be positive");
        Self { config }
    }

    /// Trains on `corpus` and returns the embedding.
    pub fn train(&self, corpus: &Corpus) -> Embedding {
        self.train_impl(corpus, None)
    }

    /// Trains on `corpus` with crash recovery: after every epoch the
    /// weights are checkpointed into `store` under `stage`, and a rerun
    /// after a crash resumes from the last completed epoch instead of
    /// epoch zero. Because per-epoch state is only well defined under the
    /// deterministic sharded schedule (per-`(epoch, shard)` RNG streams —
    /// the serial schedule threads one RNG across all epochs, and Hogwild
    /// is racy), this entry point always runs that schedule, regardless
    /// of corpus size or the `deterministic` flag. The result is
    /// therefore bit-identical whether training ran straight through or
    /// was killed and resumed any number of times. The checkpoint is
    /// cleared on successful completion; a checkpoint whose config or
    /// corpus fingerprint does not match is ignored.
    pub fn train_checkpointed(
        &self,
        corpus: &Corpus,
        store: &cats_io::CheckpointStore,
        stage: &str,
    ) -> Embedding {
        self.train_impl(corpus, Some((store, stage)))
    }

    fn train_impl(
        &self,
        corpus: &Corpus,
        ckpt: Option<(&cats_io::CheckpointStore, &str)>,
    ) -> Embedding {
        let _span = cats_obs::span!("cats.embedding.w2v.train", { corpus.len() });
        let cfg = self.config;
        let vocab = corpus.vocab();
        let n = vocab.len();
        if n == 0 {
            return Embedding {
                dim: cfg.dim,
                vectors: Vec::new(),
                vocab_words: Vec::new(),
                trained: Vec::new(),
            };
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let trained: Vec<bool> =
            (0..n).map(|i| vocab.count(TokenId(i as u32)) >= cfg.min_count).collect();

        // Input (syn0) and output (syn1neg) matrices. syn0 is initialized
        // uniformly in [-0.5, 0.5]/dim as in the reference implementation;
        // syn1neg starts at zero.
        let mut syn0: Vec<f32> =
            (0..n * cfg.dim).map(|_| (rng.random::<f32>() - 0.5) / cfg.dim as f32).collect();
        let mut syn1: Vec<f32> = vec![0.0; n * cfg.dim];

        let unigram = build_unigram_table(vocab, &trained);
        let sigmoid = build_sigmoid_table();
        let keep_prob = build_keep_probs(vocab, cfg.subsample);

        let ctx = TrainCtx {
            cfg,
            trained: &trained,
            keep_prob: &keep_prob,
            unigram: &unigram,
            sigmoid: &sigmoid,
            total_tokens: (corpus.token_count() * cfg.epochs).max(1) as f64,
        };
        let threads = cfg.parallelism.resolved_threads();
        if ckpt.is_some() {
            // Checkpointed training is pinned to the sharded schedule (see
            // `train_checkpointed`), whatever the corpus size.
            train_sharded(&ctx, corpus, &mut syn0, &mut syn1, ckpt);
        } else if cfg.parallelism.deterministic && corpus.len() >= DET_MIN_SENTENCES {
            train_sharded(&ctx, corpus, &mut syn0, &mut syn1, None);
        } else if !cfg.parallelism.deterministic && threads > 1 && corpus.len() >= threads {
            train_hogwild(&ctx, corpus, &mut syn0, &mut syn1, threads);
        } else {
            train_serial(&ctx, corpus, &mut syn0, &mut syn1, &mut rng);
        }

        let vocab_words: Vec<String> =
            (0..n).map(|i| vocab.word(TokenId(i as u32)).unwrap_or_default().to_owned()).collect();
        Embedding { dim: cfg.dim, vectors: syn0, vocab_words, trained }
    }
}

/// Uniform read/add access to a weight matrix, so every training schedule
/// shares one gradient-step routine.
trait Weights {
    fn get(&self, i: usize) -> f32;
    fn add(&self, i: usize, delta: f32);
}

/// Single-owner view through `Cell`: zero synchronization cost. Used by
/// the serial and deterministic sharded paths.
struct CellWeights<'a>(&'a [Cell<f32>]);

impl Weights for CellWeights<'_> {
    #[inline]
    fn get(&self, i: usize) -> f32 {
        self.0[i].get()
    }

    #[inline]
    fn add(&self, i: usize, delta: f32) {
        self.0[i].set(self.0[i].get() + delta);
    }
}

/// Shared Hogwild view: the read-modify-write is deliberately a plain
/// load/store pair on bit-cast atomics, so concurrent updates to the same
/// row can drop — exactly the unsynchronized float writes of the reference
/// C implementation. SGD absorbs the noise.
struct AtomicWeights<'a>(&'a [AtomicU32]);

impl Weights for AtomicWeights<'_> {
    #[inline]
    fn get(&self, i: usize) -> f32 {
        f32::from_bits(self.0[i].load(Ordering::Relaxed))
    }

    #[inline]
    fn add(&self, i: usize, delta: f32) {
        let v = f32::from_bits(self.0[i].load(Ordering::Relaxed)) + delta;
        self.0[i].store(v.to_bits(), Ordering::Relaxed);
    }
}

fn as_cells(xs: &mut [f32]) -> &[Cell<f32>] {
    Cell::from_mut(xs).as_slice_of_cells()
}

/// Read-only state shared by every training schedule.
struct TrainCtx<'a> {
    cfg: Word2VecConfig,
    trained: &'a [bool],
    keep_prob: &'a [f64],
    unigram: &'a [usize],
    sigmoid: &'a [f32],
    /// Denominator of the linear lr decay: tokens across all epochs.
    total_tokens: f64,
}

/// Per-worker scratch buffers, reused across sentences.
struct Scratch {
    kept: Vec<usize>,
    neg_buf: Vec<usize>,
    grad: Vec<f32>,
    /// Sum of `|label − σ(u·v)|` over trained pairs — a per-epoch
    /// training-progress signal surfaced through `cats-obs` (two float
    /// adds per pair; the gradient already computes the residual).
    residual: f64,
    /// Number of (center, context/negative) pairs trained.
    pairs: u64,
}

impl Scratch {
    fn new(cfg: &Word2VecConfig) -> Self {
        Self {
            kept: Vec::new(),
            neg_buf: Vec::with_capacity(cfg.negative),
            grad: vec![0.0f32; cfg.dim],
            residual: 0.0,
            pairs: 0,
        }
    }
}

/// Learning rate after `done` of `total` scheduled tokens (linear decay
/// with the reference implementation's 1e-4 floor). `done` counts *every*
/// token of each visited sentence, kept or not, exactly like the
/// historical serial loop did with its running `f64` counter.
fn lr_at(cfg: &Word2VecConfig, done: u64, total: f64) -> f32 {
    (cfg.initial_lr * (1.0 - (done as f64 / total) as f32)).max(cfg.initial_lr * 1e-4)
}

/// SplitMix64-style hash decorrelating per-shard RNG streams.
fn shard_seed(seed: u64, epoch: usize, shard: usize) -> u64 {
    let mut z = seed
        .wrapping_add((epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((shard as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trains one sentence against the weight views. The RNG draw order
/// (subsample per token, window radius per center, negatives per pair)
/// matches the original serial loop exactly, so any schedule that feeds a
/// correctly positioned RNG and token count reproduces its results.
fn train_sentence<W: Weights>(
    ctx: &TrainCtx<'_>,
    sentence: &[TokenId],
    syn0: &W,
    syn1: &W,
    lr: f32,
    rng: &mut StdRng,
    scratch: &mut Scratch,
) {
    let cfg = &ctx.cfg;
    // Subsample the sentence.
    scratch.kept.clear();
    for &tok in sentence {
        let i = tok.index();
        if !ctx.trained[i] {
            continue;
        }
        if ctx.keep_prob[i] < 1.0 && rng.random::<f64>() > ctx.keep_prob[i] {
            continue;
        }
        scratch.kept.push(i);
    }
    if scratch.kept.len() < 2 {
        return;
    }
    #[allow(clippy::needless_range_loop)] // index math is the clearer form here
    for pos in 0..scratch.kept.len() {
        let center = scratch.kept[pos];
        let radius = 1 + rng.random_range(0..cfg.window);
        let lo = pos.saturating_sub(radius);
        let hi = (pos + radius + 1).min(scratch.kept.len());
        for ctx_pos in lo..hi {
            if ctx_pos == pos {
                continue;
            }
            let context = scratch.kept[ctx_pos];
            // Draw negatives (rejecting the true context).
            scratch.neg_buf.clear();
            while scratch.neg_buf.len() < cfg.negative {
                let cand = ctx.unigram[rng.random_range(0..ctx.unigram.len())];
                if cand != context {
                    scratch.neg_buf.push(cand);
                }
            }
            let (residual, pairs) = sgns_update(
                syn0,
                syn1,
                cfg.dim,
                center,
                context,
                &scratch.neg_buf,
                lr,
                ctx.sigmoid,
                &mut scratch.grad,
            );
            scratch.residual += f64::from(residual);
            scratch.pairs += u64::from(pairs);
        }
    }
}

/// The historical serial schedule: one RNG stream drives subsampling,
/// windows and negatives across all epochs. Bit-identical to the
/// pre-parallel implementation.
fn train_serial(
    ctx: &TrainCtx<'_>,
    corpus: &Corpus,
    syn0: &mut [f32],
    syn1: &mut [f32],
    rng: &mut StdRng,
) {
    let cfg = ctx.cfg;
    let w0 = CellWeights(as_cells(syn0));
    let w1 = CellWeights(as_cells(syn1));
    let mut scratch = Scratch::new(&cfg);
    let mut processed: u64 = 0;
    for _epoch in 0..cfg.epochs {
        let epoch_span = cats_obs::span!("cats.embedding.w2v.epoch");
        let (res0, pairs0) = (scratch.residual, scratch.pairs);
        for sentence in corpus.sentences() {
            processed += sentence.len() as u64;
            let lr = lr_at(&cfg, processed, ctx.total_tokens);
            train_sentence(ctx, sentence, &w0, &w1, lr, rng, &mut scratch);
        }
        record_epoch(scratch.residual - res0, scratch.pairs - pairs0);
        drop(epoch_span);
    }
}

/// Publishes one epoch's pair count and mean absolute residual
/// (`mean |label − σ(u·v)|`, an L1 training-loss signal) to the registry.
fn record_epoch(residual: f64, pairs: u64) {
    cats_obs::counter("cats.embedding.w2v.pairs").add(pairs);
    if pairs > 0 {
        cats_obs::gauge("cats.embedding.w2v.epoch_mean_abs_err").set(residual / pairs as f64);
    }
}

/// Persisted end-of-epoch state of a checkpointed sharded run. The
/// weights after epoch `e` are a pure function of (corpus, config), so
/// restoring them and continuing from epoch `e + 1` reproduces an
/// uninterrupted run bit for bit (serde_json round-trips `f32` exactly).
#[derive(Serialize, Deserialize)]
struct EpochCheckpoint {
    /// CRC over the training config and corpus shape; a mismatch means
    /// the checkpoint belongs to some other run and must be ignored.
    fingerprint: u32,
    /// Epochs fully completed (resume starts at this epoch index).
    epochs_done: usize,
    syn0: Vec<f32>,
    syn1: Vec<f32>,
}

/// Fingerprint tying a checkpoint to one (config, corpus) pair. The
/// parallelism knob is deliberately excluded: the sharded schedule's
/// result does not depend on the thread count, so a resume may legally
/// use a different one.
fn ckpt_fingerprint(cfg: &Word2VecConfig, corpus: &Corpus) -> u32 {
    let desc = format!(
        "w2v dim={} window={} negative={} epochs={} lr={} subsample={} min_count={} seed={} \
         sentences={} tokens={}",
        cfg.dim,
        cfg.window,
        cfg.negative,
        cfg.epochs,
        cfg.initial_lr,
        cfg.subsample,
        cfg.min_count,
        cfg.seed,
        corpus.len(),
        corpus.token_count()
    );
    cats_io::crc32(desc.as_bytes())
}

/// Deterministic sharded schedule: per epoch, every shard trains a private
/// copy of the epoch snapshot over its contiguous sentence range, then the
/// shard deltas (`trained − snapshot`) merge back in fixed shard order
/// behind the barrier. A pure function of (corpus, config) — the thread
/// count only changes wall-clock time, never the vectors.
///
/// With `ckpt` set, the end-of-epoch weights are persisted after every
/// epoch and a valid checkpoint found at entry skips its completed
/// epochs; the slot is cleared once the final epoch lands.
fn train_sharded(
    ctx: &TrainCtx<'_>,
    corpus: &Corpus,
    syn0: &mut [f32],
    syn1: &mut [f32],
    ckpt: Option<(&cats_io::CheckpointStore, &str)>,
) {
    let cfg = ctx.cfg;
    let sents = corpus.sentences();
    let n_sent = sents.len();
    let epoch_tokens = corpus.token_count() as u64;
    let bounds: Vec<(usize, usize)> =
        (0..DET_SHARDS).map(|s| (s * n_sent / DET_SHARDS, (s + 1) * n_sent / DET_SHARDS)).collect();
    // Token offset of each shard, so per-shard lr decay picks up exactly
    // where a serial pass over the preceding shards would have left it.
    let mut tokens_before = vec![0u64; DET_SHARDS];
    let mut acc = 0u64;
    for (s, &(lo, hi)) in bounds.iter().enumerate() {
        tokens_before[s] = acc;
        acc += sents[lo..hi].iter().map(|t| t.len() as u64).sum::<u64>();
    }

    let fingerprint = ckpt.map(|_| ckpt_fingerprint(&cfg, corpus));
    let mut start_epoch = 0usize;
    if let (Some((store, stage)), Some(fp)) = (ckpt, fingerprint) {
        if let Some(bytes) = store.load(stage) {
            match serde_json::from_slice::<EpochCheckpoint>(&bytes) {
                Ok(c)
                    if c.fingerprint == fp
                        && c.epochs_done <= cfg.epochs
                        && c.syn0.len() == syn0.len()
                        && c.syn1.len() == syn1.len() =>
                {
                    syn0.copy_from_slice(&c.syn0);
                    syn1.copy_from_slice(&c.syn1);
                    start_epoch = c.epochs_done;
                    cats_obs::counter("cats.embedding.w2v.resumed_epochs").add(start_epoch as u64);
                }
                _ => {
                    cats_obs::counter("cats.embedding.w2v.ckpt_rejected").inc();
                    eprintln!("cats-embedding: ignoring mismatched w2v checkpoint ({stage})");
                }
            }
        }
    }

    for epoch in start_epoch..cfg.epochs {
        let epoch_span = cats_obs::span!("cats.embedding.w2v.epoch");
        let snap0 = syn0.to_vec();
        let snap1 = syn1.to_vec();
        let (snap0_ref, snap1_ref) = (&snap0, &snap1);
        let (bounds_ref, tokens_before_ref) = (&bounds, &tokens_before);
        let shards: Vec<(Vec<f32>, Vec<f32>, f64, u64)> =
            cats_par::map_indexed(cfg.parallelism, DET_SHARDS, move |s| {
                let (lo, hi) = bounds_ref[s];
                let mut w0 = snap0_ref.clone();
                let mut w1 = snap1_ref.clone();
                let mut scratch = Scratch::new(&cfg);
                {
                    let c0 = CellWeights(as_cells(&mut w0));
                    let c1 = CellWeights(as_cells(&mut w1));
                    let mut rng = StdRng::seed_from_u64(shard_seed(cfg.seed, epoch, s));
                    let mut processed = epoch as u64 * epoch_tokens + tokens_before_ref[s];
                    for sentence in &sents[lo..hi] {
                        processed += sentence.len() as u64;
                        let lr = lr_at(&cfg, processed, ctx.total_tokens);
                        train_sentence(ctx, sentence, &c0, &c1, lr, &mut rng, &mut scratch);
                    }
                }
                (w0, w1, scratch.residual, scratch.pairs)
            });
        // Untouched rows contribute an exact 0.0 delta, so no bookkeeping
        // of which rows a shard updated is needed. Residuals fold in
        // fixed shard order, keeping the published gauge deterministic.
        let mut epoch_residual = 0.0f64;
        let mut epoch_pairs = 0u64;
        for (w0, w1, residual, pairs) in &shards {
            for ((dst, &sh), &sn) in syn0.iter_mut().zip(w0).zip(snap0.iter()) {
                *dst += sh - sn;
            }
            for ((dst, &sh), &sn) in syn1.iter_mut().zip(w1).zip(snap1.iter()) {
                *dst += sh - sn;
            }
            epoch_residual += residual;
            epoch_pairs += pairs;
        }
        record_epoch(epoch_residual, epoch_pairs);
        if let (Some((store, stage)), Some(fp)) = (ckpt, fingerprint) {
            let state = EpochCheckpoint {
                fingerprint: fp,
                epochs_done: epoch + 1,
                syn0: syn0.to_vec(),
                syn1: syn1.to_vec(),
            };
            match serde_json::to_vec(&state) {
                // A failed save costs the resume point, not the training
                // run; the next epoch's save retries from scratch.
                Ok(bytes) => {
                    if let Err(e) = store.save(stage, &bytes) {
                        eprintln!("cats-embedding: w2v checkpoint save failed ({stage}): {e}");
                    }
                }
                Err(e) => eprintln!("cats-embedding: w2v checkpoint encode failed ({stage}): {e}"),
            }
        }
        drop(epoch_span);
    }
    if let Some((store, stage)) = ckpt {
        store.clear(stage);
    }
}

/// Hogwild schedule: one contiguous sentence shard per worker, no epoch
/// barrier, racy lock-free updates to the shared matrices. The lr decay
/// follows a global atomic token counter.
fn train_hogwild(
    ctx: &TrainCtx<'_>,
    corpus: &Corpus,
    syn0: &mut [f32],
    syn1: &mut [f32],
    threads: usize,
) {
    let cfg = ctx.cfg;
    let sents = corpus.sentences();
    let n_sent = sents.len();
    let a0: Vec<AtomicU32> = syn0.iter().map(|x| AtomicU32::new(x.to_bits())).collect();
    let a1: Vec<AtomicU32> = syn1.iter().map(|x| AtomicU32::new(x.to_bits())).collect();
    let processed = AtomicU64::new(0);
    let (a0_ref, a1_ref, processed_ref) = (&a0, &a1, &processed);
    cats_par::parallel_for(Parallelism { threads, deterministic: false }, threads, move |w| {
        let w0 = AtomicWeights(a0_ref);
        let w1 = AtomicWeights(a1_ref);
        let lo = w * n_sent / threads;
        let hi = (w + 1) * n_sent / threads;
        // `usize::MAX` keeps the Hogwild streams disjoint from the
        // deterministic schedule's (epoch, shard) seed space.
        let mut rng = StdRng::seed_from_u64(shard_seed(cfg.seed, usize::MAX, w));
        let mut scratch = Scratch::new(&cfg);
        for _epoch in 0..cfg.epochs {
            for sentence in &sents[lo..hi] {
                let before = processed_ref.fetch_add(sentence.len() as u64, Ordering::Relaxed);
                let lr = lr_at(&cfg, before + sentence.len() as u64, ctx.total_tokens);
                train_sentence(ctx, sentence, &w0, &w1, lr, &mut rng, &mut scratch);
            }
        }
        // No epoch barrier in Hogwild: publish the pair tally per worker
        // (order-independent), but skip the residual gauge whose f64
        // fold order would be racy.
        cats_obs::counter("cats.embedding.w2v.pairs").add(scratch.pairs);
    });
    for (dst, a) in syn0.iter_mut().zip(&a0) {
        *dst = f32::from_bits(a.load(Ordering::Relaxed));
    }
    for (dst, a) in syn1.iter_mut().zip(&a1) {
        *dst = f32::from_bits(a.load(Ordering::Relaxed));
    }
}

/// One SGNS gradient step for (center, context, negatives), generic over
/// the weight storage so the Cell-based and Hogwild paths share the exact
/// update sequence.
#[allow(clippy::too_many_arguments)]
fn sgns_update<W: Weights>(
    syn0: &W,
    syn1: &W,
    dim: usize,
    center: usize,
    context: usize,
    negatives: &[usize],
    lr: f32,
    sigmoid: &[f32],
    grad: &mut [f32],
) -> (f32, u32) {
    grad.fill(0.0);
    let v = center * dim;
    let mut residual = 0.0f32;
    let mut pairs = 0u32;
    // Positive pair (label 1) then negatives (label 0).
    for (idx, &label) in std::iter::once(&context)
        .chain(negatives)
        .zip(std::iter::once(&1.0f32).chain(std::iter::repeat(&0.0f32)))
    {
        let u = idx * dim;
        let dot = dot_weights(syn0, syn1, v, u, dim);
        let pred = fast_sigmoid(dot, sigmoid);
        residual += (label - pred).abs();
        pairs += 1;
        let g = (label - pred) * lr;
        for d in 0..dim {
            grad[d] += g * syn1.get(u + d);
            syn1.add(u + d, g * syn0.get(v + d));
        }
    }
    for d in 0..dim {
        syn0.add(v + d, grad[d]);
    }
    (residual, pairs)
}

/// 8-wide chunked dot product over generic weight storage — the same
/// fixed pairwise lane fold as [`crate::simd::dot`], duplicated here
/// because [`Weights`] is private to this module. Eight independent
/// accumulators break the serial dependency chain of the SGNS inner
/// product; the reduction order is a function of `dim` alone, so the
/// Cell-based deterministic schedules remain bit-identical run-to-run.
#[inline]
fn dot_weights<W: Weights>(syn0: &W, syn1: &W, v: usize, u: usize, dim: usize) -> f32 {
    const L: usize = crate::simd::LANES;
    let mut acc = [0.0f32; L];
    let chunks = dim / L;
    for c in 0..chunks {
        let base = c * L;
        for (l, a) in acc.iter_mut().enumerate() {
            *a += syn0.get(v + base + l) * syn1.get(u + base + l);
        }
    }
    let mut tail = 0.0f32;
    for d in chunks * L..dim {
        tail += syn0.get(v + d) * syn1.get(u + d);
    }
    let b0 = acc[0] + acc[4];
    let b1 = acc[1] + acc[5];
    let b2 = acc[2] + acc[6];
    let b3 = acc[3] + acc[7];
    ((b0 + b2) + (b1 + b3)) + tail
}

/// Builds the unigram^0.75 negative-sampling table over trained words.
fn build_unigram_table(vocab: &Vocab, trained: &[bool]) -> Vec<usize> {
    let mut weights: Vec<f64> = (0..vocab.len())
        .map(|i| if trained[i] { (vocab.count(TokenId(i as u32)) as f64).powf(0.75) } else { 0.0 })
        .collect();
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        // Degenerate corpus: sample uniformly.
        weights.iter_mut().for_each(|w| *w = 1.0);
    }
    let total: f64 = weights.iter().sum();
    let mut table = Vec::with_capacity(UNIGRAM_TABLE_SIZE);
    let mut cum = 0.0;
    let mut word = 0usize;
    let mut next_cum = weights[0] / total;
    for i in 0..UNIGRAM_TABLE_SIZE {
        table.push(word);
        cum = (i + 1) as f64 / UNIGRAM_TABLE_SIZE as f64;
        while cum > next_cum && word + 1 < weights.len() {
            word += 1;
            next_cum += weights[word] / total;
        }
    }
    let _ = cum;
    table
}

/// Precomputed `σ(x)` for `x ∈ [−6, 6]`.
fn build_sigmoid_table() -> Vec<f32> {
    (0..SIGMOID_TABLE_SIZE)
        .map(|i| {
            let x = (i as f32 / SIGMOID_TABLE_SIZE as f32 * 2.0 - 1.0) * SIGMOID_BOUND;
            1.0 / (1.0 + (-x).exp())
        })
        .collect()
}

#[inline]
fn fast_sigmoid(x: f32, table: &[f32]) -> f32 {
    if x >= SIGMOID_BOUND {
        1.0
    } else if x <= -SIGMOID_BOUND {
        0.0
    } else {
        let idx = ((x + SIGMOID_BOUND) / (2.0 * SIGMOID_BOUND) * (table.len() - 1) as f32) as usize;
        table[idx.min(table.len() - 1)]
    }
}

/// Per-word keep probability under the subsampling rule.
fn build_keep_probs(vocab: &Vocab, t: f64) -> Vec<f64> {
    let total = vocab.total_count().max(1) as f64;
    (0..vocab.len())
        .map(|i| {
            if t <= 0.0 {
                return 1.0;
            }
            let f = vocab.count(TokenId(i as u32)) as f64 / total;
            if f <= t {
                1.0
            } else {
                ((t / f).sqrt() + t / f).min(1.0)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_text::WhitespaceSegmenter;

    /// A toy corpus with two tight topical clusters: words of cluster A
    /// co-occur with each other, words of cluster B likewise.
    fn clustered_corpus(sentences_per_cluster: usize) -> Corpus {
        let mut corpus = Corpus::new();
        let seg = WhitespaceSegmenter;
        let a = ["apple", "pear", "plum", "grape"];
        let b = ["bolt", "nut", "screw", "washer"];
        let mut rng_state = 12345u64;
        let mut next = |n: usize| {
            // Tiny LCG keeps the fixture dependency-free.
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (rng_state >> 33) as usize % n
        };
        for _ in 0..sentences_per_cluster {
            let s: Vec<&str> = (0..8).map(|_| a[next(a.len())]).collect();
            corpus.push_text(&s.join(" "), &seg);
            let s: Vec<&str> = (0..8).map(|_| b[next(b.len())]).collect();
            corpus.push_text(&s.join(" "), &seg);
        }
        corpus
    }

    fn small_cfg() -> Word2VecConfig {
        Word2VecConfig {
            dim: 16,
            window: 3,
            negative: 4,
            epochs: 8,
            min_count: 1,
            subsample: 0.0,
            ..Word2VecConfig::default()
        }
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn clusters_separate_in_embedding_space() {
        let corpus = clustered_corpus(400);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        let within = emb.similarity("apple", "pear").unwrap();
        let across = emb.similarity("apple", "bolt").unwrap();
        assert!(within > across + 0.2, "within {within} should exceed across {across}");
    }

    #[test]
    fn nearest_neighbors_come_from_same_cluster() {
        let corpus = clustered_corpus(400);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        let nn = emb.nearest("bolt", 3).unwrap();
        let cluster_b = ["nut", "screw", "washer"];
        for (w, _) in &nn {
            assert!(cluster_b.contains(w), "unexpected neighbor {w}");
        }
    }

    #[test]
    fn nearest_excludes_self_and_respects_k() {
        let corpus = clustered_corpus(50);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        let nn = emb.nearest("apple", 2).unwrap();
        assert_eq!(nn.len(), 2);
        assert!(nn.iter().all(|(w, _)| *w != "apple"));
    }

    #[test]
    fn min_count_excludes_rare_words() {
        let mut corpus = Corpus::new();
        let seg = WhitespaceSegmenter;
        for _ in 0..20 {
            corpus.push_text("common words appear here", &seg);
        }
        corpus.push_text("rareword common", &seg);
        let cfg = Word2VecConfig { min_count: 3, ..small_cfg() };
        let emb = Word2VecTrainer::new(cfg).train(&corpus);
        assert!(emb.vector("rareword").is_none());
        assert!(emb.vector("common").is_some());
        assert!(emb.similarity("rareword", "common").is_none());
    }

    #[test]
    fn unknown_word_yields_none() {
        let corpus = clustered_corpus(10);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        assert!(emb.vector("nonexistent").is_none());
        assert!(emb.nearest("nonexistent", 3).is_none());
    }

    #[test]
    fn deterministic_under_seed() {
        let corpus = clustered_corpus(50);
        let a = Word2VecTrainer::new(small_cfg()).train(&corpus);
        let b = Word2VecTrainer::new(small_cfg()).train(&corpus);
        assert_eq!(a.vector("apple").unwrap(), b.vector("apple").unwrap());
    }

    #[test]
    fn vectors_are_finite() {
        let corpus = clustered_corpus(100);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        for (w, trained) in emb.words() {
            if trained {
                assert!(emb.vector(w).unwrap().iter().all(|x| x.is_finite()), "{w}");
            }
        }
    }

    #[test]
    fn empty_corpus_trains_empty_embedding() {
        let corpus = Corpus::new();
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        assert!(emb.is_empty());
    }

    #[test]
    fn sigmoid_table_monotone_and_bounded() {
        let t = build_sigmoid_table();
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        assert!(fast_sigmoid(-100.0, &t) == 0.0);
        assert!(fast_sigmoid(100.0, &t) == 1.0);
        assert!((fast_sigmoid(0.0, &t) - 0.5).abs() < 0.02);
    }

    #[test]
    fn analogy_returns_k_non_query_words() {
        let corpus = clustered_corpus(100);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        let hits = emb.analogy("apple", "pear", "bolt", 3).unwrap();
        assert_eq!(hits.len(), 3);
        for (w, s) in &hits {
            assert!(!["apple", "pear", "bolt"].contains(w));
            assert!(s.is_finite());
        }
        assert!(emb.analogy("apple", "nonexistent", "bolt", 3).is_none());
    }

    #[test]
    fn serde_roundtrip_preserves_vectors() {
        let corpus = clustered_corpus(30);
        let emb = Word2VecTrainer::new(small_cfg()).train(&corpus);
        let json = serde_json::to_string(&emb).unwrap();
        let back: Embedding = serde_json::from_str(&json).unwrap();
        assert_eq!(emb.vector("apple"), back.vector("apple"));
        assert_eq!(emb.nearest("bolt", 2).unwrap(), back.nearest("bolt", 2).unwrap());
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_rejected() {
        Word2VecTrainer::new(Word2VecConfig { dim: 0, ..Word2VecConfig::default() });
    }

    fn ckpt_store(name: &str) -> cats_io::CheckpointStore {
        let dir = std::env::temp_dir().join(format!("cats_w2v_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        cats_io::CheckpointStore::open(&dir).expect("open checkpoint store")
    }

    #[test]
    fn checkpointed_is_deterministic_and_clears_its_slot() {
        let corpus = clustered_corpus(60);
        let cfg = Word2VecConfig { parallelism: Parallelism::serial(), ..small_cfg() };
        let store = ckpt_store("clean");
        let baseline = Word2VecTrainer::new(cfg).train_checkpointed(&corpus, &store, "w2v");
        // Slot must be gone after a completed run.
        assert!(store.load("w2v").is_none(), "checkpoint cleared on completion");
        let again = Word2VecTrainer::new(cfg).train_checkpointed(&corpus, &store, "w2v");
        assert_eq!(baseline.vector("apple"), again.vector("apple"));
        assert_eq!(baseline.vector("bolt"), again.vector("bolt"));
        assert!(baseline.vector("apple").is_some());
    }

    #[test]
    fn killed_run_resumes_bit_identical() {
        let corpus = clustered_corpus(60);
        let cfg = Word2VecConfig { parallelism: Parallelism::serial(), ..small_cfg() };
        let trainer = Word2VecTrainer::new(cfg);
        let store = ckpt_store("kill");

        let uninterrupted = trainer.train_checkpointed(&corpus, &store, "w2v");
        assert!(store.load("w2v").is_none());

        // Kill the run right after the third epoch checkpoint lands.
        store.kill_after_saves(3);
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            trainer.train_checkpointed(&corpus, &store, "w2v")
        }));
        assert!(killed.is_err(), "simulated kill fires");
        assert!(store.load("w2v").is_some(), "a valid checkpoint survives the kill");

        let before = cats_obs::counter("cats.embedding.w2v.resumed_epochs").get();
        let resumed = trainer.train_checkpointed(&corpus, &store, "w2v");
        assert!(
            cats_obs::counter("cats.embedding.w2v.resumed_epochs").get() > before,
            "resume actually skipped completed epochs"
        );
        for word in ["apple", "pear", "bolt", "nut"] {
            assert_eq!(
                uninterrupted.vector(word),
                resumed.vector(word),
                "resumed weights must be bit-identical for {word}"
            );
        }
        assert!(store.load("w2v").is_none(), "checkpoint cleared after resume completes");
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        let corpus = clustered_corpus(60);
        let cfg = Word2VecConfig { parallelism: Parallelism::serial(), ..small_cfg() };
        let store = ckpt_store("mismatch");

        // Leave a checkpoint behind from a run with a different seed.
        let other = Word2VecConfig { seed: 999, ..cfg };
        store.kill_after_saves(2);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Word2VecTrainer::new(other).train_checkpointed(&corpus, &store, "w2v")
        }));
        assert!(store.load("w2v").is_some());

        let clean = Word2VecTrainer::new(cfg).train_checkpointed(&corpus, &store, "w2v");
        let store2 = ckpt_store("mismatch_fresh");
        let fresh = Word2VecTrainer::new(cfg).train_checkpointed(&corpus, &store2, "w2v");
        assert_eq!(
            clean.vector("apple"),
            fresh.vector("apple"),
            "a foreign checkpoint must not leak into the run"
        );
    }
}
