//! Iterative seed expansion (paper §II-A2).
//!
//! Starting from a few seed words (e.g. *haoping* for the positive set),
//! the paper queries the trained word2vec model for the k-nearest
//! neighbours of the seeds, then iteratively for the neighbours of those
//! neighbours, until the set reaches its size cap (~200 words, "for
//! computation efficiency"). [`expand_lexicon`] runs that frontier search
//! for both polarities and returns a `cats_text::Lexicon`.

use crate::word2vec::Embedding;
use cats_text::Lexicon;
use std::collections::{HashSet, VecDeque};

/// Parameters of the expansion search.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionConfig {
    /// Neighbours fetched per frontier word.
    pub k: usize,
    /// Minimum cosine similarity for a neighbour to be accepted.
    pub min_similarity: f32,
    /// Size cap per set (the paper uses ~200).
    pub max_words: usize,
}

impl Default for ExpansionConfig {
    fn default() -> Self {
        Self { k: 10, min_similarity: 0.5, max_words: 200 }
    }
}

/// Expands one polarity from `seeds` by breadth-first k-NN search.
///
/// Returns the expanded word set (always containing every seed that exists
/// in the embedding) in discovery order. Words in `exclude` are never
/// added — used to keep the positive and negative sets disjoint.
pub fn expand_set(
    embedding: &Embedding,
    seeds: &[String],
    exclude: &HashSet<String>,
    config: ExpansionConfig,
) -> Vec<String> {
    let mut accepted: Vec<String> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut frontier: VecDeque<String> = VecDeque::new();

    for s in seeds {
        if seen.insert(s.clone()) && !exclude.contains(s) {
            accepted.push(s.clone());
            frontier.push_back(s.clone());
        }
    }

    while let Some(word) = frontier.pop_front() {
        if accepted.len() >= config.max_words {
            break;
        }
        let Some(neighbors) = embedding.nearest(&word, config.k) else {
            continue;
        };
        for (cand, sim) in neighbors {
            if accepted.len() >= config.max_words {
                break;
            }
            if sim < config.min_similarity {
                continue; // neighbours are sorted; the rest are weaker
            }
            if cats_text::segment::is_punctuation_token(cand) {
                continue; // punctuation co-occurs with everything
            }
            if exclude.contains(cand) || !seen.insert(cand.to_owned()) {
                continue;
            }
            accepted.push(cand.to_owned());
            frontier.push_back(cand.to_owned());
        }
    }
    accepted
}

/// Builds the full [`Lexicon`] by expanding positive seeds first (with
/// negative *seeds* excluded — seed polarity is authoritative), then
/// negative seeds with the whole positive result excluded. The returned
/// sets are therefore disjoint: a word cannot be evidence for both
/// polarities.
pub fn expand_lexicon(
    embedding: &Embedding,
    positive_seeds: &[String],
    negative_seeds: &[String],
    config: ExpansionConfig,
) -> Lexicon {
    let neg_seed_set: HashSet<String> = negative_seeds.iter().cloned().collect();
    let positive = expand_set(embedding, positive_seeds, &neg_seed_set, config);
    let pos_set: HashSet<String> = positive.iter().cloned().collect();
    let negative = expand_set(embedding, negative_seeds, &pos_set, config);
    Lexicon::new(positive, negative)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word2vec::{Word2VecConfig, Word2VecTrainer};
    use cats_text::{Corpus, WhitespaceSegmenter};

    /// Corpus with positive-context words, negative-context words and
    /// neutral filler; polarity words co-occur within their polarity.
    fn polar_corpus() -> Corpus {
        let mut corpus = Corpus::new();
        let seg = WhitespaceSegmenter;
        let pos = ["good", "great", "fine", "lovely", "super"];
        let neg = ["bad", "awful", "poor", "nasty", "gross"];
        let mut state = 7u64;
        let mut next = |n: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % n
        };
        for _ in 0..600 {
            let s: Vec<&str> = (0..6).map(|_| pos[next(pos.len())]).collect();
            corpus.push_text(&s.join(" "), &seg);
            let s: Vec<&str> = (0..6).map(|_| neg[next(neg.len())]).collect();
            corpus.push_text(&s.join(" "), &seg);
            corpus.push_text("box ship item parcel store", &seg);
        }
        corpus
    }

    fn embedding() -> crate::word2vec::Embedding {
        Word2VecTrainer::new(Word2VecConfig {
            dim: 16,
            window: 3,
            negative: 4,
            epochs: 6,
            min_count: 1,
            subsample: 0.0,
            ..Word2VecConfig::default()
        })
        .train(&polar_corpus())
    }

    #[test]
    fn expansion_recovers_polarity_cluster() {
        let emb = embedding();
        let cfg = ExpansionConfig { k: 4, min_similarity: 0.3, max_words: 10 };
        let set = expand_set(&emb, &["good".into()], &HashSet::new(), cfg);
        assert!(set.contains(&"good".to_string()));
        // should find most of the positive cluster
        let found = ["great", "fine", "lovely", "super"]
            .iter()
            .filter(|w| set.contains(&w.to_string()))
            .count();
        assert!(found >= 3, "found only {found} of the positive cluster: {set:?}");
        // and none of the negative cluster
        for w in ["bad", "awful", "poor", "nasty", "gross"] {
            assert!(!set.contains(&w.to_string()), "{w} leaked into positive set");
        }
    }

    #[test]
    fn max_words_caps_the_set() {
        let emb = embedding();
        let cfg = ExpansionConfig { k: 10, min_similarity: -1.0, max_words: 3 };
        let set = expand_set(&emb, &["good".into()], &HashSet::new(), cfg);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn seeds_always_included_even_with_strict_threshold() {
        let emb = embedding();
        let cfg = ExpansionConfig { k: 5, min_similarity: 0.999, max_words: 50 };
        let set = expand_set(&emb, &["good".into(), "bad".into()], &HashSet::new(), cfg);
        assert!(set.contains(&"good".to_string()));
        assert!(set.contains(&"bad".to_string()));
    }

    #[test]
    fn unknown_seed_is_skipped_gracefully() {
        let emb = embedding();
        let cfg = ExpansionConfig::default();
        let set = expand_set(&emb, &["zzz_unknown".into(), "good".into()], &HashSet::new(), cfg);
        // unknown seed stays in the list (harmless) but contributes no
        // neighbours; the known seed still expands
        assert!(set.len() > 2);
    }

    #[test]
    fn exclusion_keeps_sets_disjoint() {
        let emb = embedding();
        let cfg = ExpansionConfig { k: 6, min_similarity: 0.0, max_words: 20 };
        let lex = expand_lexicon(&emb, &["good".into()], &["bad".into()], cfg);
        for w in lex.negative_words() {
            assert!(!lex.is_positive(w), "{w} in both sets");
        }
        assert!(lex.is_positive("good"));
        assert!(lex.is_negative("bad"));
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let emb = embedding();
        let cfg = ExpansionConfig { k: 2, min_similarity: 0.9999, max_words: 10 };
        let set =
            expand_set(&emb, &["good".into(), "good".into(), "good".into()], &HashSet::new(), cfg);
        assert_eq!(set.iter().filter(|w| *w == "good").count(), 1);
    }
}
