//! Branch-lite 8-wide f32 kernels for the embedding hot loops.
//!
//! The word2vec inner loops — the SGNS dot product and the cosine
//! similarity behind lexicon expansion — spend their time in
//! one-element-at-a-time f32 reductions that the compiler cannot
//! profitably vectorize because a single serial accumulator chains every
//! add. These kernels process slices in explicit 8-wide chunks with eight
//! independent accumulators, then combine them with a *fixed* pairwise
//! fold. That breaks the dependency chain (so the autovectorizer can keep
//! 256-bit lanes busy) while keeping the summation order a pure function
//! of the slice length — the same input always reduces in the same order,
//! preserving the crate's bit-identical determinism guarantees.
//!
//! Changing from one serial accumulator to eight changes *which* order
//! floats are added in, so results differ from a naive loop in the last
//! ulps — but deterministically so. All cross-thread reproducibility
//! tests compare runs that share these kernels, and every external
//! consumer of cosine similarity is tolerance-based.

/// Width of a chunk: eight f32 lanes (one AVX2 register).
pub const LANES: usize = 8;

/// Reduces eight lane accumulators with a fixed pairwise tree:
/// `(a0+a4)+(a2+a6)` + `(a1+a5)+(a3+a7)` — the order never depends on
/// data, only on lane position.
#[inline]
fn fold8(acc: [f32; LANES]) -> f32 {
    let b0 = acc[0] + acc[4];
    let b1 = acc[1] + acc[5];
    let b2 = acc[2] + acc[6];
    let b3 = acc[3] + acc[7];
    (b0 + b2) + (b1 + b3)
}

/// Dot product of two equal-length slices, 8-wide chunked.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: mismatched lengths");
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            acc[l] += a[base + l] * b[base + l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * LANES..a.len() {
        tail += a[i] * b[i];
    }
    fold8(acc) + tail
}

/// Fused dot product and squared norms: `(a·b, a·a, b·b)` in one pass.
/// This is the cosine-similarity kernel — one traversal instead of three.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot_norms(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    assert_eq!(a.len(), b.len(), "dot_norms: mismatched lengths");
    let mut dot = [0.0f32; LANES];
    let mut na = [0.0f32; LANES];
    let mut nb = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            let (x, y) = (a[base + l], b[base + l]);
            dot[l] += x * y;
            na[l] += x * x;
            nb[l] += y * y;
        }
    }
    let (mut td, mut ta, mut tb) = (0.0f32, 0.0f32, 0.0f32);
    for i in chunks * LANES..a.len() {
        let (x, y) = (a[i], b[i]);
        td += x * y;
        ta += x * x;
        tb += y * y;
    }
    (fold8(dot) + td, fold8(na) + ta, fold8(nb) + tb)
}

/// `out[i] += scale * src[i]`, 8-wide chunked (the axpy of the SGNS
/// gradient-accumulation and weight-update loops).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(scale: f32, src: &[f32], out: &mut [f32]) {
    assert_eq!(src.len(), out.len(), "axpy: mismatched lengths");
    let chunks = src.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        for l in 0..LANES {
            out[base + l] += scale * src[base + l];
        }
    }
    for i in chunks * LANES..src.len() {
        out[i] += scale * src[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic test vectors without external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        fn f32(&mut self) -> f32 {
            (self.next() >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0
        }
        fn vec(&mut self, n: usize) -> Vec<f32> {
            (0..n).map(|_| self.f32()).collect()
        }
    }

    fn reference_dot(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum()
    }

    #[test]
    fn dot_matches_reference_within_f32_resummation_error() {
        let mut rng = Rng(7);
        // Cover: empty, sub-chunk, exact multiples of 8, ragged tails.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 64, 100, 257] {
            let (a, b) = (rng.vec(n), rng.vec(n));
            let got = dot(&a, &b) as f64;
            let want = reference_dot(&a, &b);
            let tol = 1e-4 * (n.max(1) as f64);
            assert!((got - want).abs() < tol, "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn dot_is_deterministic_across_calls() {
        let mut rng = Rng(11);
        let (a, b) = (rng.vec(123), rng.vec(123));
        let first = dot(&a, &b).to_bits();
        for _ in 0..10 {
            assert_eq!(dot(&a, &b).to_bits(), first);
        }
    }

    #[test]
    fn dot_norms_matches_separate_dots_bitwise() {
        // The fused kernel must reduce in exactly the same order as three
        // independent kernel calls — same chunking, same fold.
        let mut rng = Rng(13);
        for n in [5usize, 8, 31, 96] {
            let (a, b) = (rng.vec(n), rng.vec(n));
            let (d, na, nb) = dot_norms(&a, &b);
            assert_eq!(d.to_bits(), dot(&a, &b).to_bits(), "n={n}");
            assert_eq!(na.to_bits(), dot(&a, &a).to_bits(), "n={n}");
            assert_eq!(nb.to_bits(), dot(&b, &b).to_bits(), "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_update() {
        let mut rng = Rng(17);
        for n in [0usize, 4, 8, 21, 80] {
            let src = rng.vec(n);
            let mut out = rng.vec(n);
            let mut want = out.clone();
            axpy(0.25, &src, &mut out);
            for i in 0..n {
                want[i] += 0.25 * src[i];
            }
            // Element-wise updates have no reduction order: bit-exact.
            assert_eq!(
                out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "n={n}"
            );
        }
    }

    #[test]
    fn fold_order_is_position_not_value_dependent() {
        // Two inputs with permuted values in the same positions reduce via
        // the same tree; swapping values across lanes may change the result
        // (different order), but the *same* input twice never does.
        let a: Vec<f32> = (0..16).map(|i| (i as f32) * 0.1).collect();
        let b = vec![1.0f32; 16];
        assert_eq!(dot(&a, &b).to_bits(), dot(&a, &b).to_bits());
    }

    #[test]
    #[should_panic(expected = "mismatched lengths")]
    fn mismatched_lengths_panic() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
