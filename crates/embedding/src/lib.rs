//! # cats-embedding — word2vec substrate
//!
//! The paper's semantic analyzer trains a word2vec model on ~70M Taobao
//! comments and uses it to *expand* a handful of seed words into the
//! positive set *P* and negative set *N* (~200 words each, Table I),
//! including homograph variants human experts would miss. This crate
//! implements that machinery from scratch:
//!
//! * [`word2vec`] — skip-gram with negative sampling (SGNS): unigram^0.75
//!   negative-sampling table, frequency subsampling, linear learning-rate
//!   decay, deterministic under a seed.
//! * [`expand`] — iterative k-nearest-neighbour expansion from seed words
//!   (§II-A2: "search the k-nearest neighbors of the seeds, followed by
//!   iteratively search the k-nearest neighbors of these neighbors").
//! * [`simd`] — branch-lite 8-wide f32 kernels (dot, fused dot+norms,
//!   axpy) behind the SGNS inner product and cosine similarity, with a
//!   fixed lane-fold order for deterministic reductions.
//!
//! No external ML dependency: the trainer is a few hundred lines of dense
//! `Vec<f32>` arithmetic.

pub mod expand;
pub mod simd;
pub mod word2vec;

pub use expand::{expand_lexicon, ExpansionConfig};
pub use word2vec::{Embedding, Word2VecConfig, Word2VecTrainer};
