//! Property-based tests for the embedding substrate.

use cats_embedding::expand::expand_set;
use cats_embedding::word2vec::cosine;
use cats_embedding::{ExpansionConfig, Word2VecConfig, Word2VecTrainer};
use cats_text::{Corpus, WhitespaceSegmenter};
use proptest::prelude::*;
use std::collections::HashSet;

fn vector() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, 4)
}

fn small_corpus(seed: u64) -> Corpus {
    let seg = WhitespaceSegmenter;
    let mut corpus = Corpus::new();
    let words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
    let mut state = seed | 1;
    for _ in 0..120 {
        let mut sentence = Vec::new();
        for _ in 0..6 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            sentence.push(words[(state >> 33) as usize % words.len()]);
        }
        corpus.push_text(&sentence.join(" "), &seg);
    }
    corpus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cosine_bounded_and_symmetric(a in vector(), b in vector()) {
        let ab = cosine(&a, &b);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&ab));
        prop_assert!((ab - cosine(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn cosine_scale_invariant(a in vector(), b in vector(), k in 0.1f32..10.0) {
        let scaled: Vec<f32> = a.iter().map(|x| x * k).collect();
        let d = (cosine(&a, &b) - cosine(&scaled, &b)).abs();
        prop_assert!(d < 1e-4, "scale changed cosine by {d}");
    }

    #[test]
    fn self_similarity_is_one(a in vector()) {
        prop_assume!(a.iter().any(|&x| x.abs() > 1e-3));
        prop_assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn trained_embedding_is_queryable(seed in any::<u64>()) {
        let corpus = small_corpus(seed);
        let emb = Word2VecTrainer::new(Word2VecConfig {
            dim: 8,
            epochs: 1,
            window: 2,
            min_count: 1,
            subsample: 0.0,
            seed,
            ..Word2VecConfig::default()
        })
        .train(&corpus);
        let nn = emb.nearest("alpha", 3).expect("alpha trained");
        prop_assert_eq!(nn.len(), 3);
        for (w, s) in nn {
            prop_assert!(w != "alpha");
            prop_assert!(s.is_finite());
        }
    }

    #[test]
    fn expansion_never_exceeds_cap_and_keeps_seeds(seed in any::<u64>(), cap in 1usize..8) {
        let corpus = small_corpus(seed);
        let emb = Word2VecTrainer::new(Word2VecConfig {
            dim: 8,
            epochs: 1,
            window: 2,
            min_count: 1,
            subsample: 0.0,
            seed,
            ..Word2VecConfig::default()
        })
        .train(&corpus);
        let set = expand_set(
            &emb,
            &["alpha".to_string()],
            &HashSet::new(),
            ExpansionConfig { k: 4, min_similarity: -1.0, max_words: cap },
        );
        prop_assert!(set.len() <= cap.max(1));
        prop_assert!(set.contains(&"alpha".to_string()));
        // no duplicates
        let mut sorted = set.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), set.len());
    }
}
