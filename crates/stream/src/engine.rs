//! The streaming engine: ingest → windows → deterministic batch
//! scoring → incremental verdicts.
//!
//! One [`StreamEngine`] owns the per-item window state of a comment
//! firehose. Ingest is single-threaded and O(1) per event (ring
//! updates, a capped deque push, a tokenizer pass); scoring happens in
//! *flushes* on the virtual stream clock, where every item touched
//! since the last flush is re-scored as a batch:
//!
//! 1. the 11 CATS features are extracted over the item's **windowed**
//!    comments (order-preserving parallel map — bit-identical at any
//!    thread count),
//! 2. the rows go through the detector's batch path
//!    ([`cats_core::Detector::score_rows`], the FlatForest branch-lite
//!    scorer),
//! 3. each content score is fused with the item's velocity risk
//!    ([`cats_core::fusion`]) and emitted as a [`StreamVerdict`].
//!
//! ## Memory bound
//!
//! Per-item state is O(1): two fixed-size rings plus a comment deque
//! capped at [`StreamConfig::max_window_comments`] entries. Items idle
//! longer than [`StreamConfig::idle_evict_ms`] are dropped at flush, so
//! resident state is bounded by the number of items *active within one
//! eviction horizon* — never by trace length. `exp_stream` asserts
//! this by replaying a 2× longer trace and requiring the same peak
//! footprint.

use crate::window::{mix_user, Ring};
use cats_core::features::extract_batch;
use cats_core::fusion::{fuse_scores, velocity_risk, StreamVerdict, VelocityFeatures};
use cats_core::{CatsPipeline, FilterDecision, ItemComments};
use cats_obs::{Counter, Histogram};
use cats_text::{Segmenter, WhitespaceSegmenter};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// Streaming engine configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Long (trend) window span in ms. Must be a multiple of
    /// `long_buckets`.
    pub long_window_ms: u64,
    /// Buckets in the long ring.
    pub long_buckets: usize,
    /// Short (burst) window span in ms. Must be a multiple of
    /// `short_buckets`.
    pub short_window_ms: u64,
    /// Buckets in the short ring.
    pub short_buckets: usize,
    /// Newest comments kept per item for content scoring; the memory
    /// cap on the only unbounded input (text).
    pub max_window_comments: usize,
    /// Virtual ms between scoring flushes.
    pub flush_interval_ms: u64,
    /// Items idle this long are evicted at flush.
    pub idle_evict_ms: u64,
    /// Weight of velocity evidence in score fusion.
    pub fusion_weight: f64,
    /// Feature-extraction threads (0 = auto). Verdicts are
    /// bit-identical at every setting.
    pub threads: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            long_window_ms: 300_000,
            long_buckets: 30,
            short_window_ms: 30_000,
            short_buckets: 10,
            max_window_comments: 64,
            flush_interval_ms: 10_000,
            idle_evict_ms: 600_000,
            fusion_weight: cats_core::DEFAULT_FUSION_WEIGHT,
            threads: 0,
        }
    }
}

/// One comment event entering the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct CommentEvent {
    /// Event time on the stream clock (ms).
    pub at_ms: u64,
    /// Target item.
    pub item_id: u64,
    /// Commenting user.
    pub user_id: u64,
    /// The item's public sales volume (stage-1 filter input).
    pub sales_volume: u64,
    /// Raw comment text.
    pub text: String,
}

/// Outcome of ingesting one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Recorded into the item's windows.
    Accepted,
    /// Older than the long window could absorb — dropped (counted in
    /// `cats.stream.late_dropped`).
    LateDropped,
}

/// One dirty item's windowed scoring inputs, drained at a flush
/// boundary — everything a scorer needs except the model itself.
#[derive(Debug, Clone)]
pub struct WindowSlice {
    /// Item id.
    pub item_id: u64,
    /// Highest public sales volume seen on the stream for this item.
    pub sales_volume: u64,
    /// The item's windowed comments (texts + tokens).
    pub comments: ItemComments,
    /// Velocity feature row at the flush watermark.
    pub velocity: VelocityFeatures,
}

/// Per-item sliding-window state. Fixed-size except the capped deque.
struct ItemState {
    long: Ring,
    short: Ring,
    /// Newest arrival seen (delivery-order max), for gaps + eviction.
    last_at_ms: u64,
    sales_volume: u64,
    /// Windowed comments, newest at the back: (at_ms, text, tokens).
    comments: VecDeque<(u64, String, Vec<String>)>,
    /// Bytes currently held by `comments` text + tokens.
    text_bytes: usize,
}

impl ItemState {
    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.long.approx_bytes()
            + self.short.approx_bytes()
            + self.text_bytes
            + self.comments.len() * std::mem::size_of::<(u64, String, Vec<String>)>()
    }
}

/// The streaming velocity detector. See the module docs.
pub struct StreamEngine {
    config: StreamConfig,
    items: HashMap<u64, ItemState>,
    /// Items touched since the last flush, iterated in sorted order so
    /// verdict emission order is deterministic.
    dirty: BTreeSet<u64>,
    /// Highest event time seen (the virtual clock).
    watermark_ms: u64,
    /// Virtual time of the last flush.
    last_flush_ms: u64,
    /// Running + peak resident footprint (bytes).
    resident_bytes: usize,
    peak_resident_bytes: usize,
    events: u64,
    late_dropped: u64,
    // Metric handles cached once — recording is atomics-only on the
    // per-event hot path (DESIGN.md §8 convention).
    m_events: Arc<Counter>,
    m_late: Arc<Counter>,
    m_lag: Arc<Histogram>,
}

impl StreamEngine {
    /// A fresh engine.
    ///
    /// # Panics
    /// Panics if a window span is not a whole multiple of its bucket
    /// count (bucket boundaries must tile the window exactly).
    pub fn new(config: StreamConfig) -> Self {
        assert!(
            config.long_buckets > 0 && config.long_window_ms % config.long_buckets as u64 == 0,
            "long window must tile into buckets"
        );
        assert!(
            config.short_buckets > 0 && config.short_window_ms % config.short_buckets as u64 == 0,
            "short window must tile into buckets"
        );
        assert!(config.max_window_comments > 0, "need at least one windowed comment");
        Self {
            config,
            items: HashMap::new(),
            dirty: BTreeSet::new(),
            watermark_ms: 0,
            last_flush_ms: 0,
            resident_bytes: 0,
            peak_resident_bytes: 0,
            events: 0,
            late_dropped: 0,
            m_events: cats_obs::counter("cats.stream.events"),
            m_late: cats_obs::counter("cats.stream.late_dropped"),
            m_lag: cats_obs::histogram("cats.stream.delivery_lag_ms"),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Ingests one event: updates the item's rings, gap histograms and
    /// windowed comments. O(1) amortized; no scoring happens here.
    pub fn ingest(&mut self, ev: &CommentEvent) -> IngestOutcome {
        self.events += 1;
        self.m_events.inc();
        if self.watermark_ms > ev.at_ms {
            self.m_lag.record((self.watermark_ms - ev.at_ms) as f64);
        }
        self.watermark_ms = self.watermark_ms.max(ev.at_ms);

        // A fresh item whose first event is already out of the window
        // would create state that can never score: drop it up front.
        // (Existing items were already accounted; 0 marks "new" for the
        // byte accounting below.)
        let bytes_before = match self.items.get(&ev.item_id) {
            Some(state) => state.approx_bytes(),
            None => {
                let horizon = self.watermark_ms.saturating_sub(self.config.long_window_ms);
                if ev.at_ms < horizon {
                    self.late_dropped += 1;
                    self.m_late.inc();
                    return IngestOutcome::LateDropped;
                }
                0
            }
        };

        let cfg = &self.config;
        let state = self.items.entry(ev.item_id).or_insert_with(|| ItemState {
            long: Ring::new(cfg.long_window_ms / cfg.long_buckets as u64, cfg.long_buckets),
            short: Ring::new(cfg.short_window_ms / cfg.short_buckets as u64, cfg.short_buckets),
            last_at_ms: 0,
            sales_volume: ev.sales_volume,
            comments: VecDeque::with_capacity(cfg.max_window_comments.min(16)),
            text_bytes: 0,
        });

        // Delivery-order inter-arrival gap: what the stream actually
        // sees, robust to bounded reordering (|Δ| of adjacent stamps).
        let gap = if state.comments.is_empty() && state.last_at_ms == 0 {
            None
        } else {
            Some(ev.at_ms.abs_diff(state.last_at_ms))
        };
        let user_hash = mix_user(ev.user_id);
        if !state.long.record(ev.at_ms, user_hash, gap) {
            // Beyond even the long window's skew tolerance: the event
            // carries no usable signal at the current clock. (Only
            // reachable for already-resident items, so bytes_before
            // needs no reconciliation — nothing changed.)
            self.late_dropped += 1;
            self.m_late.inc();
            return IngestOutcome::LateDropped;
        }
        state.short.record(ev.at_ms, user_hash, gap);
        state.last_at_ms = state.last_at_ms.max(ev.at_ms);
        state.sales_volume = state.sales_volume.max(ev.sales_volume);

        let tokens = WhitespaceSegmenter.segment(&ev.text);
        state.text_bytes += ev.text.len() + tokens.iter().map(String::len).sum::<usize>();
        state.comments.push_back((ev.at_ms, ev.text.clone(), tokens));
        while state.comments.len() > self.config.max_window_comments {
            let (_, text, tokens) = state.comments.pop_front().expect("len > cap > 0");
            state.text_bytes -= text.len() + tokens.iter().map(String::len).sum::<usize>();
        }

        self.resident_bytes = self.resident_bytes + state.approx_bytes() - bytes_before;
        self.peak_resident_bytes = self.peak_resident_bytes.max(self.resident_bytes);
        self.dirty.insert(ev.item_id);
        IngestOutcome::Accepted
    }

    /// Whether the virtual clock has passed the next flush boundary.
    pub fn flush_due(&self) -> bool {
        self.watermark_ms >= self.last_flush_ms + self.config.flush_interval_ms
    }

    /// [`StreamEngine::flush`] when due, else no-op. The convenience
    /// the per-event driver loop calls.
    pub fn maybe_flush(&mut self, pipeline: &CatsPipeline) -> Vec<StreamVerdict> {
        if self.flush_due() {
            self.flush(pipeline)
        } else {
            Vec::new()
        }
    }

    /// Sweeps idle items, drains the dirty set, trims every dirty
    /// item's state to the window ending at the watermark, and returns
    /// the windowed scoring inputs in ascending item-id order.
    ///
    /// This is the model-free half of [`StreamEngine::flush`]:
    /// `cats-serve` calls it directly and pushes the slices through its
    /// micro-batcher instead of scoring in place.
    pub fn drain_window_slices(&mut self) -> Vec<WindowSlice> {
        self.last_flush_ms = self.watermark_ms;
        let now = self.watermark_ms;

        // Idle sweep first, so evicted items can't be scored.
        let idle = self.config.idle_evict_ms;
        let evicted: Vec<u64> = self
            .items
            .iter()
            .filter(|(_, s)| s.last_at_ms.saturating_add(idle) < now)
            .map(|(&id, _)| id)
            .collect();
        for id in evicted {
            if let Some(s) = self.items.remove(&id) {
                self.resident_bytes -= s.approx_bytes();
            }
            self.dirty.remove(&id);
        }

        let dirty: Vec<u64> = std::mem::take(&mut self.dirty).into_iter().collect();
        let window_start = now.saturating_sub(self.config.long_window_ms);
        let mut slices = Vec::with_capacity(dirty.len());
        for id in dirty {
            let state = self.items.get_mut(&id).expect("dirty item is resident");
            let bytes_before = state.approx_bytes();
            while state.comments.front().is_some_and(|&(at, _, _)| at < window_start) {
                let (_, text, tokens) = state.comments.pop_front().expect("front exists");
                state.text_bytes -= text.len() + tokens.iter().map(String::len).sum::<usize>();
            }
            state.long.advance_to(now);
            state.short.advance_to(now);
            self.resident_bytes = self.resident_bytes + state.approx_bytes() - bytes_before;

            let mut comments = ItemComments::default();
            for (_, text, tokens) in &state.comments {
                comments.texts.push(text.clone());
                comments.tokens.push(tokens.clone());
            }
            slices.push(WindowSlice {
                item_id: id,
                sales_volume: state.sales_volume,
                comments,
                velocity: velocity_features(
                    &state.long,
                    &state.short,
                    self.config.long_window_ms,
                    self.config.short_window_ms,
                ),
            });
        }
        cats_obs::counter("cats.stream.flushes").inc();
        self.publish_gauges();
        slices
    }

    /// Scores every item touched since the last flush and emits one
    /// incremental verdict each (ascending item id). Also sweeps idle
    /// items — the eviction half of the memory bound.
    pub fn flush(&mut self, pipeline: &CatsPipeline) -> Vec<StreamVerdict> {
        let _span = cats_obs::span!("cats.stream.flush", { self.dirty.len() });
        let now = self.watermark_ms;
        let slices = self.drain_window_slices();
        if slices.is_empty() {
            return Vec::new();
        }

        // Content scoring: parallel extraction (order-preserving,
        // thread-count independent) + FlatForest batch margins.
        let analyzer = pipeline.analyzer();
        let detector = pipeline.detector();
        let batch: Vec<&ItemComments> = slices.iter().map(|s| &s.comments).collect();
        let rows = extract_batch(&batch, analyzer, self.config.threads);
        let content = detector.score_rows(&rows);
        let threshold = detector.threshold();

        let mut verdicts = Vec::with_capacity(slices.len());
        for (slice, row) in slices.iter().zip(&content) {
            // Stage-1 rule filter, windowed edition: filtered items keep
            // their velocity risk (observability) but score no content
            // evidence, so fusion alone cannot flag them.
            let classified = !slice.comments.is_empty()
                && detector.filter_item(slice.sales_volume, &slice.comments, analyzer)
                    == FilterDecision::Classified;
            let cats_score = if classified { *row } else { 0.0 };
            let risk = velocity_risk(&slice.velocity);
            let fused = fuse_scores(cats_score, risk, self.config.fusion_weight);
            verdicts.push(StreamVerdict {
                item_id: slice.item_id,
                at_ms: now,
                window_comments: slice.comments.len() as u32,
                cats_score,
                velocity_risk: risk,
                fused_score: fused,
                is_fraud: fused >= threshold,
            });
        }
        cats_obs::counter("cats.stream.verdicts").add(verdicts.len() as u64);
        verdicts
    }

    fn publish_gauges(&self) {
        cats_obs::gauge("cats.stream.resident_items").set(self.items.len() as f64);
        cats_obs::gauge("cats.stream.resident_bytes").set(self.resident_bytes as f64);
        let occupancy: usize = self.items.values().map(|s| s.comments.len()).sum();
        cats_obs::gauge("cats.stream.window_comments").set(occupancy as f64);
    }

    /// Items currently holding window state.
    pub fn resident_items(&self) -> usize {
        self.items.len()
    }

    /// Current approximate resident footprint in bytes.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Peak approximate resident footprint in bytes — the number the
    /// memory-bound assertion gates on.
    pub fn peak_resident_bytes(&self) -> usize {
        self.peak_resident_bytes
    }

    /// Events ingested (including late drops).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events dropped as older than the long window could absorb.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// The virtual clock (highest event time seen).
    pub fn watermark_ms(&self) -> u64 {
        self.watermark_ms
    }
}

/// Computes the velocity feature row from an item's two rings.
fn velocity_features(
    long: &Ring,
    short: &Ring,
    long_window_ms: u64,
    short_window_ms: u64,
) -> VelocityFeatures {
    let ls = long.stats();
    let ss = short.stats();
    let long_min = long_window_ms as f64 / 60_000.0;
    let short_min = short_window_ms as f64 / 60_000.0;
    let rate_long = ls.count as f64 / long_min;
    let rate_short = ss.count as f64 / short_min;
    let accel = if rate_long > 0.0 { rate_short / rate_long } else { 0.0 };
    let conc_long =
        if ls.count == 0 { 0.0 } else { (1.0 - ls.distinct_est / ls.count as f64).clamp(0.0, 1.0) };
    let conc_short =
        if ss.count == 0 { 0.0 } else { (1.0 - ss.distinct_est / ss.count as f64).clamp(0.0, 1.0) };
    VelocityFeatures([
        rate_long,
        rate_short,
        accel,
        conc_long,
        conc_short,
        ls.gap_entropy,
        ss.gap_entropy,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> StreamConfig {
        StreamConfig {
            long_window_ms: 60_000,
            long_buckets: 12,
            short_window_ms: 10_000,
            short_buckets: 5,
            max_window_comments: 8,
            flush_interval_ms: 5_000,
            idle_evict_ms: 120_000,
            ..StreamConfig::default()
        }
    }

    fn ev(at_ms: u64, item_id: u64, user_id: u64, text: &str) -> CommentEvent {
        CommentEvent { at_ms, item_id, user_id, sales_volume: 50, text: text.to_string() }
    }

    #[test]
    fn window_comment_cap_holds() {
        let mut e = StreamEngine::new(tiny_config());
        for i in 0..100u64 {
            e.ingest(&ev(i * 10, 1, i, "hao hao hao"));
        }
        assert_eq!(e.items[&1].comments.len(), 8);
        assert_eq!(e.resident_items(), 1);
    }

    #[test]
    fn bytes_accounting_is_consistent() {
        let mut e = StreamEngine::new(tiny_config());
        for i in 0..50u64 {
            e.ingest(&ev(i * 500, i % 3, i, "hao zhen hao bucuo"));
        }
        let expected: usize = e.items.values().map(|s| s.approx_bytes()).sum();
        assert_eq!(e.resident_bytes(), expected);
        assert!(e.peak_resident_bytes() >= e.resident_bytes());
    }

    #[test]
    fn ancient_first_event_is_late_dropped() {
        let mut e = StreamEngine::new(tiny_config());
        e.ingest(&ev(500_000, 1, 1, "hao"));
        assert_eq!(e.ingest(&ev(100, 2, 2, "hao")), IngestOutcome::LateDropped);
        assert_eq!(e.resident_items(), 1);
        assert_eq!(e.late_dropped(), 1);
    }

    #[test]
    fn flush_cadence_follows_virtual_clock() {
        let mut e = StreamEngine::new(tiny_config());
        e.ingest(&ev(1_000, 1, 1, "hao"));
        assert!(!e.flush_due(), "first interval not yet elapsed");
        e.ingest(&ev(6_000, 1, 2, "hao"));
        assert!(e.flush_due());
    }

    #[test]
    fn idle_items_evict_and_release_bytes() {
        let mut e = StreamEngine::new(tiny_config());
        e.ingest(&ev(1_000, 7, 1, "hao hao"));
        // Far-future activity on another item pushes the virtual clock
        // past item 7's idle horizon. The sweep itself needs a fitted
        // pipeline and runs end-to-end in tests/stream.rs; here assert
        // the horizon predicate flush() evicts on.
        e.ingest(&ev(200_000, 8, 2, "hao hao"));
        assert_eq!(e.resident_items(), 2);
        let idle = e.config().idle_evict_ms;
        assert!(e.items[&7].last_at_ms.saturating_add(idle) < e.watermark_ms());
        assert!(e.items[&8].last_at_ms.saturating_add(idle) >= e.watermark_ms());
    }

    #[test]
    fn velocity_row_is_finite_on_empty_rings() {
        let long = Ring::new(10_000, 30);
        let short = Ring::new(3_000, 10);
        let v = velocity_features(&long, &short, 300_000, 30_000);
        assert!(v.is_finite());
        assert!(v.as_slice().iter().all(|&x| x == 0.0));
    }
}
