//! # cats-stream — streaming velocity detection
//!
//! CATS as published scores an *archive*: crawl, extract, classify.
//! This crate scores the *firehose*: comments arrive as a continuous
//! event stream on a virtual millisecond clock, flow through
//! bounded-memory sliding windows, and produce incremental per-item
//! verdicts that fuse the paper's 11 content features with velocity
//! evidence the archive view cannot see — arrival rate, commenter
//! concentration, and inter-arrival burst regularity.
//!
//! Two layers:
//!
//! * [`window`] — the fixed-size primitives: bucketed time rings with
//!   per-bucket counts, a 256-bit distinct-commenter sketch, and a
//!   log₂-binned gap histogram. O(1) memory per item, boundary-exact
//!   eviction.
//! * [`engine`] — the [`StreamEngine`]: single-threaded O(1) ingest,
//!   periodic flushes that re-score every touched item through the
//!   FlatForest batch path, noisy-OR score fusion, and idle-item
//!   eviction. Verdicts are bit-identical at any thread count and
//!   across reruns of the same trace.
//!
//! The event source lives in `cats_platform::stream` (temporal replay
//! with bursty campaign waves); the serving surface is `/v1/ingest` in
//! `cats-serve`; the gate is `exp_stream` in `cats-bench`. Design
//! notes: `DESIGN.md §13`.

pub mod engine;
pub mod window;

pub use engine::{CommentEvent, IngestOutcome, StreamConfig, StreamEngine, WindowSlice};
pub use window::{mix_user, Ring, WindowStats, GAP_BINS};
