//! Bounded-memory sliding-window state: bucketed time rings with
//! per-bucket arrival counts, a 256-bit distinct-commenter sketch, and
//! a log₂-bucketed inter-arrival-gap histogram.
//!
//! Every structure here is **fixed-size**: a ring of `n` buckets, each
//! bucket `4 + 32 + 64` bytes of plain counters, regardless of how many
//! events flow through it. That is the memory-bound half of the
//! streaming design (`DESIGN.md §13`); the other half — the capped
//! comment deque — lives in the engine.
//!
//! ## Time model
//!
//! A ring covers the half-open window `(head_end − window, head_end]`
//! where `head_end` is the end of the newest bucket. An event at time
//! `t` lands in absolute bucket `t / bucket_ms`; advancing the ring to
//! a later time clears exactly the buckets that fell out, so **eviction
//! happens at exact bucket boundaries** — an event `window_ms` old is
//! gone, an event `window_ms − 1` old is still counted (asserted by the
//! boundary tests).
//!
//! Out-of-order arrivals within the window are inserted into their
//! proper (older) bucket; counts, the commenter sketch, and rates are
//! therefore *delivery-order independent*. The gap histogram is fed by
//! the engine with delivery-order gaps (the stream's own arrival
//! cadence), which is the signal a streaming detector actually sees.

/// Words in the distinct-commenter bitmap (4 × 64 = 256 bits).
const USER_BITMAP_WORDS: usize = 4;
/// Bits in the distinct-commenter bitmap.
const USER_BITMAP_BITS: u32 = (USER_BITMAP_WORDS * 64) as u32;
/// Inter-arrival gap histogram bins: bin `i` holds gaps in
/// `[2^i − 1, 2^(i+1) − 1)` ms, last bin open-ended.
pub const GAP_BINS: usize = 16;

/// One fixed-size time bucket.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Arrivals in this bucket.
    count: u32,
    /// Distinct-commenter bitmap (hashed user ids).
    users: [u64; USER_BITMAP_WORDS],
    /// Inter-arrival gap histogram (log₂ ms bins).
    gaps: [u32; GAP_BINS],
}

impl Bucket {
    const EMPTY: Bucket = Bucket { count: 0, users: [0; USER_BITMAP_WORDS], gaps: [0; GAP_BINS] };
}

/// Deterministic 64-bit mix of a user id (SplitMix64 finalizer) — the
/// bitmap hash. Pure arithmetic, identical everywhere.
pub fn mix_user(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Aggregated view of one ring's window, read at feature time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Total arrivals in the window.
    pub count: u64,
    /// Linear-counting estimate of distinct commenters, capped at
    /// `count` (a sketch can never claim more commenters than events).
    pub distinct_est: f64,
    /// Shannon entropy (bits) of the gap histogram; 0.0 for an empty
    /// window — never NaN.
    pub gap_entropy: f64,
}

/// A fixed-size bucketed time ring.
#[derive(Debug, Clone)]
pub struct Ring {
    bucket_ms: u64,
    buckets: Vec<Bucket>,
    /// Absolute index of the newest covered bucket.
    head: u64,
}

impl Ring {
    /// A ring of `n_buckets` buckets of `bucket_ms` each, covering a
    /// `n_buckets * bucket_ms` window ending at the head bucket.
    pub fn new(bucket_ms: u64, n_buckets: usize) -> Self {
        assert!(bucket_ms > 0 && n_buckets > 0, "ring needs positive geometry");
        Self { bucket_ms, buckets: vec![Bucket::EMPTY; n_buckets], head: 0 }
    }

    /// Window span in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.bucket_ms * self.buckets.len() as u64
    }

    /// Advances the head to cover `now_ms`, clearing buckets that fell
    /// out of the window. Never moves backwards.
    pub fn advance_to(&mut self, now_ms: u64) {
        let now_bucket = now_ms / self.bucket_ms;
        if now_bucket <= self.head {
            return;
        }
        let n = self.buckets.len() as u64;
        let stale = (now_bucket - self.head).min(n);
        for i in 0..stale {
            let b = (self.head + 1 + i) % n;
            self.buckets[b as usize] = Bucket::EMPTY;
        }
        self.head = now_bucket;
    }

    /// Records an arrival at `at_ms` by `user_hash` with delivery-order
    /// gap `gap_ms` (`None` for an item's first arrival). Returns
    /// `false` — and records nothing — when `at_ms` is already outside
    /// the window (a late event beyond the skew the window can absorb).
    pub fn record(&mut self, at_ms: u64, user_hash: u64, gap_ms: Option<u64>) -> bool {
        self.advance_to(at_ms);
        let bucket = at_ms / self.bucket_ms;
        let n = self.buckets.len() as u64;
        if bucket + n <= self.head {
            return false;
        }
        let slot = &mut self.buckets[(bucket % n) as usize];
        slot.count += 1;
        let bit = (user_hash % USER_BITMAP_BITS as u64) as usize;
        slot.users[bit / 64] |= 1u64 << (bit % 64);
        if let Some(gap) = gap_ms {
            // log2 bin of (gap+1): gap 0 → bin 0, 1 → 1, 2..3 → bin of
            // ilog2(gap+1), saturating in the last bin.
            let bin = ((gap + 1).ilog2() as usize).min(GAP_BINS - 1);
            slot.gaps[bin] += 1;
        }
        true
    }

    /// Aggregates the live buckets into [`WindowStats`].
    pub fn stats(&self) -> WindowStats {
        let mut count: u64 = 0;
        let mut users = [0u64; USER_BITMAP_WORDS];
        let mut gaps = [0u64; GAP_BINS];
        for b in &self.buckets {
            count += b.count as u64;
            for (acc, w) in users.iter_mut().zip(b.users) {
                *acc |= w;
            }
            for (acc, g) in gaps.iter_mut().zip(b.gaps) {
                *acc += g as u64;
            }
        }

        let set_bits: u32 = users.iter().map(|w| w.count_ones()).sum();
        let distinct_est = if count == 0 {
            0.0
        } else if set_bits >= USER_BITMAP_BITS {
            // Sketch saturated: every slot occupied, the estimate
            // diverges — fall back to the only safe bound.
            count as f64
        } else {
            // Linear counting: m · ln(m / zeros), capped at count.
            let m = USER_BITMAP_BITS as f64;
            let z = (USER_BITMAP_BITS - set_bits) as f64;
            (m * (m / z).ln()).min(count as f64)
        };

        let total_gaps: u64 = gaps.iter().sum();
        let gap_entropy = if total_gaps == 0 {
            0.0
        } else {
            let t = total_gaps as f64;
            -gaps
                .iter()
                .filter(|&&g| g > 0)
                .map(|&g| {
                    let p = g as f64 / t;
                    p * p.log2()
                })
                .sum::<f64>()
        };

        WindowStats { count, distinct_est, gap_entropy }
    }

    /// Fixed memory footprint of this ring in bytes (it never grows).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.buckets.len() * std::mem::size_of::<Bucket>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        // 10 buckets × 1000 ms = 10 s window.
        Ring::new(1000, 10)
    }

    #[test]
    fn empty_window_stats_are_zero_not_nan() {
        let s = ring().stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.distinct_est, 0.0);
        assert_eq!(s.gap_entropy, 0.0);
        assert!(s.distinct_est.is_finite() && s.gap_entropy.is_finite());
    }

    #[test]
    fn eviction_at_exact_boundary_tick() {
        let mut r = ring();
        assert!(r.record(500, mix_user(1), None)); // bucket 0
        assert_eq!(r.stats().count, 1);
        // Advance so bucket 0 is the oldest still covered: head 9 covers
        // buckets 0..=9.
        r.advance_to(9_999);
        assert_eq!(r.stats().count, 1, "event must survive to the last covering tick");
        // One more bucket: the exact boundary. Bucket 0 falls out.
        r.advance_to(10_000);
        assert_eq!(r.stats().count, 0, "event must evict exactly at the boundary tick");
    }

    #[test]
    fn late_event_beyond_window_is_rejected() {
        let mut r = ring();
        r.advance_to(20_000); // head bucket 20, window covers 11..=20
        assert!(r.record(11_000, mix_user(2), None), "inside window: accepted");
        assert!(!r.record(10_999, mix_user(3), None), "outside window: rejected");
        assert_eq!(r.stats().count, 1);
    }

    #[test]
    fn out_of_order_within_window_is_order_independent() {
        let events: [(u64, u64); 5] = [(1200, 7), (300, 8), (2500, 7), (900, 9), (2499, 8)];
        let mut sorted = events;
        sorted.sort_unstable();
        let mut a = ring();
        let mut b = ring();
        for &(t, u) in &events {
            assert!(a.record(t, mix_user(u), None));
        }
        for &(t, u) in &sorted {
            assert!(b.record(t, mix_user(u), None));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn distinct_estimate_tracks_distinct_users() {
        let mut same = ring();
        let mut diff = ring();
        for i in 0..20u64 {
            same.record(i * 100, mix_user(42), None);
            diff.record(i * 100, mix_user(i), None);
        }
        let (s, d) = (same.stats(), diff.stats());
        assert!(s.distinct_est <= 2.0, "single commenter estimated at {}", s.distinct_est);
        assert!(d.distinct_est >= 10.0, "20 commenters estimated at {}", d.distinct_est);
        assert!(d.distinct_est <= 20.0, "estimate above count: {}", d.distinct_est);
    }

    #[test]
    fn regular_gaps_have_lower_entropy_than_scattered() {
        let mut regular = ring();
        let mut scattered = ring();
        let mut t = 0u64;
        for i in 0..32u64 {
            regular.record(i * 250, mix_user(i), Some(250));
            let gap = [3u64, 70, 900, 9000, 31, 400, 1, 2400][i as usize % 8];
            t += gap;
            scattered.record(t % 9_999, mix_user(i), Some(gap));
        }
        assert!(regular.stats().gap_entropy < scattered.stats().gap_entropy);
    }

    #[test]
    fn footprint_is_constant_under_load() {
        let mut r = ring();
        let before = r.approx_bytes();
        for i in 0..100_000u64 {
            r.record(i, mix_user(i), Some(1));
        }
        assert_eq!(r.approx_bytes(), before);
    }
}
