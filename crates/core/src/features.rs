//! The feature extractor: the 11 features of Table II.
//!
//! Given an item's comments (segmented), computes:
//!
//! | # | name | definition |
//! |---|------|------------|
//! | 0 | `averagePositiveNumber` | mean count of *P*-words per comment |
//! | 1 | `averagePositive/NegativeNumber` | mean of `abs(#P − #N)` per comment |
//! | 2 | `uniqueWordRatio` | distinct words / total words over all comments |
//! | 3 | `averageSentiment` | mean sentiment score of the comments |
//! | 4 | `averageCommentEntropy` | mean token entropy per comment |
//! | 5 | `averageCommentLength` | mean character length per comment |
//! | 6 | `sumCommentLength` | total character length of all comments |
//! | 7 | `sumPunctuationNumber` | total punctuation tokens |
//! | 8 | `averagePunctuationRatio` | mean punctuation ratio per comment |
//! | 9 | `averageNgramNumber` | mean count of positive 2-grams per comment |
//! | 10 | `averageNgramRatio` | mean ratio of positive 2-grams per comment |
//!
//! Batch extraction is parallel across items via scoped threads — the
//! paper notes its extractor "is implemented in a parallelized style for
//! fast processing".

use crate::semantic::SemanticAnalyzer;
use cats_text::{ngram, stats, Segmenter, WhitespaceSegmenter};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Number of features (Table II).
pub const N_FEATURES: usize = 11;

/// Feature display names, in vector order.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "averagePositiveNumber",
    "averagePositive/NegativeNumber",
    "uniqueWordRatio",
    "averageSentiment",
    "averageCommentEntropy",
    "averageCommentLength",
    "sumCommentLength",
    "sumPunctuationNumber",
    "averagePunctuationRatio",
    "averageNgramNumber",
    "averageNgramRatio",
];

/// One item's feature row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector(pub [f64; N_FEATURES]);

impl FeatureVector {
    /// The row as a slice (classifier input shape).
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Named access by Table II name; `None` for unknown names.
    pub fn get(&self, name: &str) -> Option<f64> {
        FEATURE_NAMES.iter().position(|&n| n == name).map(|i| self.0[i])
    }

    /// Whether every component is finite (no NaN/±∞). The detector
    /// quarantines rows that fail this instead of feeding them to the
    /// classifier.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }
}

/// Training-time reference of the 11 feature distributions: per feature,
/// a sorted (and down-sampled to at most [`FeatureReferenceSet::MAX_SAMPLE`]
/// values) sample of the finite training rows. Persisted inside the model
/// artifact (the IO2 `featref` section) so a serving process can anchor a
/// `cats_obs::DriftMonitor` on exactly the distribution the deployed
/// model was trained against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureReferenceSet {
    /// Training rows the reference was built from (before down-sampling).
    pub rows: u64,
    /// Per-feature sorted samples, in [`FEATURE_NAMES`] order.
    pub per_feature: Vec<Vec<f64>>,
}

impl FeatureReferenceSet {
    /// Per-feature sample cap. Down-sampling keeps evenly spaced order
    /// statistics (quantiles), which is all PSI binning and the KS
    /// statistic consume.
    pub const MAX_SAMPLE: usize = 256;

    /// Builds the reference from training feature rows. Non-finite
    /// values are dropped per feature; columns longer than
    /// [`Self::MAX_SAMPLE`] keep evenly strided order statistics
    /// including both extremes.
    pub fn from_rows(rows: &[FeatureVector]) -> Self {
        let mut per_feature = Vec::with_capacity(N_FEATURES);
        for f in 0..N_FEATURES {
            let mut col: Vec<f64> = rows.iter().map(|r| r.0[f]).filter(|x| x.is_finite()).collect();
            col.sort_by(f64::total_cmp);
            if col.len() > Self::MAX_SAMPLE {
                let n = col.len();
                col = (0..Self::MAX_SAMPLE)
                    .map(|i| col[i * (n - 1) / (Self::MAX_SAMPLE - 1)])
                    .collect();
            }
            per_feature.push(col);
        }
        Self { rows: rows.len() as u64, per_feature }
    }

    /// Whether the reference carries no usable samples.
    pub fn is_empty(&self) -> bool {
        self.per_feature.iter().all(Vec::is_empty)
    }

    /// The reference as named `cats-obs` monitor inputs, in
    /// [`FEATURE_NAMES`] order.
    pub fn references(&self) -> Vec<cats_obs::FeatureReference> {
        self.per_feature
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let name = FEATURE_NAMES.get(i).copied().unwrap_or("extra");
                cats_obs::FeatureReference::new(name, s.clone())
            })
            .collect()
    }
}

/// An item's comments, pre-segmented — the extractor's input unit.
#[derive(Debug, Clone, Default)]
pub struct ItemComments {
    /// Raw comment texts.
    pub texts: Vec<String>,
    /// Segmentation results, parallel to `texts`.
    pub tokens: Vec<Vec<String>>,
}

impl ItemComments {
    /// Segments raw comment texts with the default whitespace segmenter.
    pub fn from_texts<'a, I: IntoIterator<Item = &'a str>>(texts: I) -> Self {
        Self::from_texts_with(texts, &WhitespaceSegmenter)
    }

    /// Segments raw comment texts with an explicit segmenter — e.g. a
    /// `cats_text::DictSegmenter` for delimiter-free (Chinese-style)
    /// platforms. Swapping the segmenter is the only change required to
    /// point CATS at a platform with a different comment orthography.
    pub fn from_texts_with<'a, I: IntoIterator<Item = &'a str>>(
        texts: I,
        segmenter: &impl Segmenter,
    ) -> Self {
        let mut out = Self::default();
        for t in texts {
            out.tokens.push(segmenter.segment(t));
            out.texts.push(t.to_owned());
        }
        out
    }

    /// Number of comments.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the item has no comments.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }
}

/// Extracts the 11-feature row for one item.
///
/// An item with zero comments yields the natural zero/neutral values
/// (sentiment 0.5, uniqueWordRatio 1.0, everything else 0) — the detector
/// filters such items out before classification anyway.
pub fn extract(item: &ItemComments, analyzer: &SemanticAnalyzer) -> FeatureVector {
    let n = item.len();
    if n == 0 {
        let mut v = [0.0; N_FEATURES];
        v[2] = 1.0; // uniqueWordRatio of nothing
        v[3] = 0.5; // neutral sentiment
        return FeatureVector(v);
    }
    let nf = n as f64;
    let lex = analyzer.lexicon();

    let mut sum_pos = 0.0;
    let mut sum_pos_neg_diff = 0.0;
    let mut distinct: HashSet<&str> = HashSet::new();
    let mut total_words = 0usize;
    let mut sum_sentiment = 0.0;
    let mut sum_entropy = 0.0;
    let mut sum_chars = 0usize;
    let mut sum_punct = 0usize;
    let mut sum_punct_ratio = 0.0;
    let mut sum_ngram = 0.0;
    let mut sum_ngram_ratio = 0.0;

    for (text, toks) in item.texts.iter().zip(&item.tokens) {
        sum_pos += lex.positive_count(toks) as f64;
        sum_pos_neg_diff += lex.positive_negative_diff(toks) as f64;
        for t in toks {
            distinct.insert(t.as_str());
        }
        total_words += toks.len();
        sum_sentiment += analyzer.sentiment().score(toks);
        let st = stats::CommentStats::compute(text, toks);
        sum_entropy += st.entropy;
        sum_chars += st.chars;
        sum_punct += st.punctuation;
        sum_punct_ratio += st.punctuation_ratio;
        sum_ngram += ngram::positive_bigram_count(toks, lex) as f64;
        sum_ngram_ratio += ngram::positive_bigram_ratio(toks, lex);
    }

    FeatureVector([
        sum_pos / nf,
        sum_pos_neg_diff / nf,
        if total_words == 0 { 1.0 } else { distinct.len() as f64 / total_words as f64 },
        sum_sentiment / nf,
        sum_entropy / nf,
        sum_chars as f64 / nf,
        sum_chars as f64,
        sum_punct as f64,
        sum_punct_ratio / nf,
        sum_ngram / nf,
        sum_ngram_ratio / nf,
    ])
}

/// Parallel batch extraction: one feature row per item, order-preserving.
///
/// Runs on the `cats-par` work-stealing pool (`n_threads` workers; 0 means
/// "use available parallelism"), so items with heavily skewed comment
/// counts rebalance instead of straggling one static chunk. Accepts owned
/// items or references (`&[ItemComments]` and `&[&ItemComments]` both
/// work), and the output is identical at every thread count.
pub fn extract_batch<T>(
    items: &[T],
    analyzer: &SemanticAnalyzer,
    n_threads: usize,
) -> Vec<FeatureVector>
where
    T: std::borrow::Borrow<ItemComments> + Sync,
{
    let _span = cats_obs::span!("cats.core.extract", { items.len() });
    let par = cats_par::Parallelism { threads: n_threads, deterministic: true };
    cats_par::map_chunked(par, items, |it| {
        // Per-item span: records from worker threads through the
        // thread-local stack, so `cats.core.extract.item` gets real
        // per-item latency percentiles without locking.
        let _item_span = cats_obs::span!("cats.core.extract.item");
        extract(it.borrow(), analyzer)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_sentiment::SentimentModel;
    use cats_text::Lexicon;

    fn analyzer() -> SemanticAnalyzer {
        let lex = Lexicon::new(["hao".to_string(), "zan".to_string()], ["cha".to_string()]);
        let docs = |texts: &[&str]| -> Vec<Vec<String>> {
            texts.iter().map(|t| t.split_whitespace().map(String::from).collect()).collect()
        };
        let sent = SentimentModel::train(
            &docs(&["hao zan hao", "zan zan hao"]),
            &docs(&["cha cha", "cha zaogao"]),
        );
        SemanticAnalyzer::from_parts(lex, sent)
    }

    #[test]
    fn feature_names_match_count() {
        assert_eq!(FEATURE_NAMES.len(), N_FEATURES);
        let v = FeatureVector([0.0; N_FEATURES]);
        assert_eq!(v.as_slice().len(), N_FEATURES);
    }

    #[test]
    fn named_access() {
        let mut raw = [0.0; N_FEATURES];
        raw[6] = 42.0;
        let v = FeatureVector(raw);
        assert_eq!(v.get("sumCommentLength"), Some(42.0));
        assert_eq!(v.get("nonsense"), None);
    }

    #[test]
    fn word_level_features_count_lexicon_hits() {
        let a = analyzer();
        // comment 1: "hao hao cha" → pos 2, |2-1|=1
        // comment 2: "zan x" → pos 1, |1-0|=1
        let item = ItemComments::from_texts(["hao hao cha", "zan x"]);
        let v = extract(&item, &a);
        assert!((v.get("averagePositiveNumber").unwrap() - 1.5).abs() < 1e-12);
        assert!((v.get("averagePositive/NegativeNumber").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unique_word_ratio_is_global_over_item() {
        let a = analyzer();
        // words: hao, hao | hao → 1 distinct / 3 total
        let item = ItemComments::from_texts(["hao hao", "hao"]);
        let v = extract(&item, &a);
        assert!((v.get("uniqueWordRatio").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn length_features_sum_and_average() {
        let a = analyzer();
        let item = ItemComments::from_texts(["abcd ef", "gh"]);
        let v = extract(&item, &a);
        // chars (no whitespace): 6 and 2
        assert!((v.get("averageCommentLength").unwrap() - 4.0).abs() < 1e-12);
        assert!((v.get("sumCommentLength").unwrap() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn punctuation_features() {
        let a = analyzer();
        let item = ItemComments::from_texts(["hao ! !", "x"]);
        let v = extract(&item, &a);
        assert!((v.get("sumPunctuationNumber").unwrap() - 2.0).abs() < 1e-12);
        // ratios: 2/3 and 0 → mean 1/3
        assert!((v.get("averagePunctuationRatio").unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ngram_features_count_positive_bigrams() {
        let a = analyzer();
        // "hen hao zan": bigrams (hen,hao)+, (hao,zan)+ → count 2, ratio 1.0
        // "x y": none → 0, 0
        let item = ItemComments::from_texts(["hen hao zan", "x y"]);
        let v = extract(&item, &a);
        assert!((v.get("averageNgramNumber").unwrap() - 1.0).abs() < 1e-12);
        assert!((v.get("averageNgramRatio").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sentiment_feature_averages_comment_scores() {
        let a = analyzer();
        let item = ItemComments::from_texts(["hao zan", "cha cha"]);
        let v = extract(&item, &a);
        let s1 = a.sentiment().score(&item.tokens[0]);
        let s2 = a.sentiment().score(&item.tokens[1]);
        assert!((v.get("averageSentiment").unwrap() - (s1 + s2) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_item_yields_neutral_row() {
        let a = analyzer();
        let v = extract(&ItemComments::default(), &a);
        assert_eq!(v.get("uniqueWordRatio"), Some(1.0));
        assert_eq!(v.get("averageSentiment"), Some(0.5));
        assert_eq!(v.get("sumCommentLength"), Some(0.0));
    }

    #[test]
    fn all_features_finite() {
        let a = analyzer();
        let item = ItemComments::from_texts(["hao ， zan cha ! hao", "", "x"]);
        let v = extract(&item, &a);
        assert!(v.as_slice().iter().all(|x| x.is_finite()), "{v:?}");
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let a = analyzer();
        let items: Vec<ItemComments> = (0..37)
            .map(|i| ItemComments::from_texts([format!("hao w{i} zan").as_str(), "cha x"]))
            .collect();
        let seq: Vec<FeatureVector> = items.iter().map(|it| extract(it, &a)).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = extract_batch(&items, &a, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn batch_on_empty_input() {
        let a = analyzer();
        assert!(extract_batch::<ItemComments>(&[], &a, 4).is_empty());
    }

    #[test]
    fn batch_accepts_references() {
        let a = analyzer();
        let items: Vec<ItemComments> =
            (0..5).map(|i| ItemComments::from_texts([format!("hao w{i}").as_str()])).collect();
        let refs: Vec<&ItemComments> = items.iter().collect();
        assert_eq!(extract_batch(&refs, &a, 2), extract_batch(&items, &a, 2));
    }
}
