//! Batch-level detection summaries.
//!
//! A deployment (the paper's §VI: CATS running inside Taobao) consumes
//! per-item [`DetectionReport`]s, but operators read aggregates: how many
//! items were filtered and why, how the fraud scores distribute, which
//! items to queue for expert review. [`DetectionSummary`] condenses a
//! report batch into that view.

use crate::detector::{DetectionReport, FilterDecision};
use serde::{Deserialize, Serialize};

/// Aggregate view of one detection batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionSummary {
    /// Items in the batch.
    pub total: usize,
    /// Items dropped by the sales-volume rule.
    pub filtered_low_sales: usize,
    /// Items dropped by the positive-evidence rule.
    pub filtered_no_evidence: usize,
    /// Items that reached the classifier.
    pub classified: usize,
    /// Items reported as fraud.
    pub reported: usize,
    /// Share of classified items reported.
    pub report_rate: f64,
    /// Mean fraud score over classified items (0 if none).
    pub mean_score: f64,
    /// Decile counts of the classified items' scores (10 bins over \[0,1\]).
    pub score_deciles: [usize; 10],
}

impl DetectionSummary {
    /// Builds the summary from a report batch.
    pub fn from_reports(reports: &[DetectionReport]) -> Self {
        let mut s = Self {
            total: reports.len(),
            filtered_low_sales: 0,
            filtered_no_evidence: 0,
            classified: 0,
            reported: 0,
            report_rate: 0.0,
            mean_score: 0.0,
            score_deciles: [0; 10],
        };
        let mut score_sum = 0.0;
        for r in reports {
            match r.filter {
                FilterDecision::FilteredLowSales => s.filtered_low_sales += 1,
                FilterDecision::FilteredNoPositiveEvidence => s.filtered_no_evidence += 1,
                FilterDecision::Classified => {
                    s.classified += 1;
                    score_sum += r.score;
                    let decile = ((r.score * 10.0) as usize).min(9);
                    s.score_deciles[decile] += 1;
                    if r.is_fraud {
                        s.reported += 1;
                    }
                }
            }
        }
        if s.classified > 0 {
            s.report_rate = s.reported as f64 / s.classified as f64;
            s.mean_score = score_sum / s.classified as f64;
        }
        s
    }

    /// The indices of the `k` highest-scoring reported items — the expert
    /// review queue, most suspicious first.
    pub fn review_queue(reports: &[DetectionReport], k: usize) -> Vec<usize> {
        let mut frauds: Vec<&DetectionReport> =
            reports.iter().filter(|r| r.is_fraud).collect();
        frauds.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        frauds.into_iter().take(k).map(|r| r.index).collect()
    }
}

impl std::fmt::Display for DetectionSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} items | filtered: {} low-sales, {} no-evidence | classified: {}",
            self.total, self.filtered_low_sales, self.filtered_no_evidence, self.classified
        )?;
        write!(
            f,
            "reported: {} ({:.2}% of classified), mean score {:.3}",
            self.reported,
            self.report_rate * 100.0,
            self.mean_score
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureVector, N_FEATURES};

    fn report(index: usize, filter: FilterDecision, score: f64, is_fraud: bool) -> DetectionReport {
        DetectionReport {
            index,
            filter,
            score,
            is_fraud,
            features: matches!(filter, FilterDecision::Classified)
                .then(|| FeatureVector([0.0; N_FEATURES])),
        }
    }

    fn batch() -> Vec<DetectionReport> {
        vec![
            report(0, FilterDecision::Classified, 0.95, true),
            report(1, FilterDecision::Classified, 0.15, false),
            report(2, FilterDecision::FilteredLowSales, 0.0, false),
            report(3, FilterDecision::Classified, 0.85, true),
            report(4, FilterDecision::FilteredNoPositiveEvidence, 0.0, false),
            report(5, FilterDecision::Classified, 0.55, false),
        ]
    }

    #[test]
    fn summary_counts() {
        let s = DetectionSummary::from_reports(&batch());
        assert_eq!(s.total, 6);
        assert_eq!(s.filtered_low_sales, 1);
        assert_eq!(s.filtered_no_evidence, 1);
        assert_eq!(s.classified, 4);
        assert_eq!(s.reported, 2);
        assert!((s.report_rate - 0.5).abs() < 1e-12);
        assert!((s.mean_score - (0.95 + 0.15 + 0.85 + 0.55) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn deciles_partition_classified_items() {
        let s = DetectionSummary::from_reports(&batch());
        assert_eq!(s.score_deciles.iter().sum::<usize>(), s.classified);
        assert_eq!(s.score_deciles[9], 1); // 0.95
        assert_eq!(s.score_deciles[8], 1); // 0.85
        assert_eq!(s.score_deciles[1], 1); // 0.15
        assert_eq!(s.score_deciles[5], 1); // 0.55
    }

    #[test]
    fn review_queue_ranked_by_score() {
        let q = DetectionSummary::review_queue(&batch(), 10);
        assert_eq!(q, vec![0, 3]);
        assert_eq!(DetectionSummary::review_queue(&batch(), 1), vec![0]);
    }

    #[test]
    fn empty_batch_is_safe() {
        let s = DetectionSummary::from_reports(&[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean_score, 0.0);
        assert_eq!(s.report_rate, 0.0);
        assert!(DetectionSummary::review_queue(&[], 5).is_empty());
    }

    #[test]
    fn display_is_compact() {
        let s = DetectionSummary::from_reports(&batch());
        let text = format!("{s}");
        assert!(text.contains("reported: 2"));
        assert!(text.contains("filtered: 1 low-sales"));
    }

    #[test]
    fn boundary_score_one_lands_in_top_decile() {
        let reports = vec![report(0, FilterDecision::Classified, 1.0, true)];
        let s = DetectionSummary::from_reports(&reports);
        assert_eq!(s.score_deciles[9], 1);
    }
}
