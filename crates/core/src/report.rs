//! Batch-level detection summaries.
//!
//! A deployment (the paper's §VI: CATS running inside Taobao) consumes
//! per-item [`DetectionReport`]s, but operators read aggregates: how many
//! items were filtered and why, how the fraud scores distribute, which
//! items to queue for expert review. [`DetectionSummary`] condenses a
//! report batch into that view.

use crate::detector::{DetectionReport, FilterDecision};
use serde::{Deserialize, Serialize};

/// Data-health section of a detection batch: how degraded the input was.
///
/// The quarantine counters come from the reports themselves; the crawl
/// counters are attached by the caller (who holds the crawl stats) via
/// [`DetectionSummary::with_crawl_health`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DataHealth {
    /// Items quarantined (zero usable comments or non-finite features).
    pub items_quarantined: usize,
    /// Items whose comment walk was truncated during collection.
    pub items_truncated: usize,
    /// Comment records that survived crawling and cleaning.
    pub comments_kept: u64,
    /// Comment records dropped during collection (malformed, duplicated,
    /// or poisoned).
    pub comments_dropped: u64,
    /// `comments_dropped / (kept + dropped)`; 0 when nothing was seen.
    pub dropped_fraction: f64,
}

/// Aggregate view of one detection batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionSummary {
    /// Items in the batch.
    pub total: usize,
    /// Items dropped by the sales-volume rule.
    pub filtered_low_sales: usize,
    /// Items dropped by the positive-evidence rule.
    pub filtered_no_evidence: usize,
    /// Items quarantined for data health (never scored).
    #[serde(default)]
    pub quarantined: usize,
    /// Items that reached the classifier.
    pub classified: usize,
    /// Items reported as fraud.
    pub reported: usize,
    /// Share of classified items reported.
    pub report_rate: f64,
    /// Mean fraud score over classified items (0 if none).
    pub mean_score: f64,
    /// Decile counts of the classified items' scores (10 bins over \[0,1\]).
    pub score_deciles: [usize; 10],
    /// Data-health section (quarantine + crawl-degradation counters).
    #[serde(default)]
    pub health: DataHealth,
}

impl DetectionSummary {
    /// Builds the summary from a report batch.
    pub fn from_reports(reports: &[DetectionReport]) -> Self {
        let mut s = Self {
            total: reports.len(),
            filtered_low_sales: 0,
            filtered_no_evidence: 0,
            quarantined: 0,
            classified: 0,
            reported: 0,
            report_rate: 0.0,
            mean_score: 0.0,
            score_deciles: [0; 10],
            health: DataHealth::default(),
        };
        let mut score_sum = 0.0;
        for r in reports {
            match r.filter {
                FilterDecision::FilteredLowSales => s.filtered_low_sales += 1,
                FilterDecision::FilteredNoPositiveEvidence => s.filtered_no_evidence += 1,
                FilterDecision::Quarantined => s.quarantined += 1,
                FilterDecision::Classified => {
                    s.classified += 1;
                    score_sum += r.score;
                    let decile = ((r.score * 10.0) as usize).min(9);
                    s.score_deciles[decile] += 1;
                    if r.is_fraud {
                        s.reported += 1;
                    }
                }
            }
        }
        if s.classified > 0 {
            s.report_rate = s.reported as f64 / s.classified as f64;
            s.mean_score = score_sum / s.classified as f64;
        }
        s.health.items_quarantined = s.quarantined;
        s
    }

    /// Attaches the collection-side health counters (the summary only
    /// sees reports; the caller holds the crawl bookkeeping).
    pub fn with_crawl_health(
        mut self,
        items_truncated: usize,
        comments_kept: u64,
        comments_dropped: u64,
    ) -> Self {
        self.health.items_truncated = items_truncated;
        self.health.comments_kept = comments_kept;
        self.health.comments_dropped = comments_dropped;
        let seen = comments_kept + comments_dropped;
        self.health.dropped_fraction =
            if seen > 0 { comments_dropped as f64 / seen as f64 } else { 0.0 };
        self
    }

    /// The indices of the `k` highest-scoring reported items — the expert
    /// review queue, most suspicious first. NaN scores (which should not
    /// occur — the detector quarantines non-finite rows) rank last rather
    /// than poisoning the order.
    pub fn review_queue(reports: &[DetectionReport], k: usize) -> Vec<usize> {
        let mut frauds: Vec<&DetectionReport> = reports.iter().filter(|r| r.is_fraud).collect();
        frauds.sort_by(|a, b| {
            let (a_nan, b_nan) = (a.score.is_nan(), b.score.is_nan());
            a_nan.cmp(&b_nan).then_with(|| b.score.total_cmp(&a.score))
        });
        frauds.into_iter().take(k).map(|r| r.index).collect()
    }
}

impl std::fmt::Display for DetectionSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} items | filtered: {} low-sales, {} no-evidence | quarantined: {} | classified: {}",
            self.total,
            self.filtered_low_sales,
            self.filtered_no_evidence,
            self.quarantined,
            self.classified
        )?;
        writeln!(
            f,
            "reported: {} ({:.2}% of classified), mean score {:.3}",
            self.reported,
            self.report_rate * 100.0,
            self.mean_score
        )?;
        write!(
            f,
            "health: {} quarantined, {} truncated, {:.2}% comments dropped",
            self.health.items_quarantined,
            self.health.items_truncated,
            self.health.dropped_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureVector, N_FEATURES};

    fn report(index: usize, filter: FilterDecision, score: f64, is_fraud: bool) -> DetectionReport {
        DetectionReport {
            index,
            filter,
            score,
            is_fraud,
            features: matches!(filter, FilterDecision::Classified)
                .then(|| FeatureVector([0.0; N_FEATURES])),
        }
    }

    fn batch() -> Vec<DetectionReport> {
        vec![
            report(0, FilterDecision::Classified, 0.95, true),
            report(1, FilterDecision::Classified, 0.15, false),
            report(2, FilterDecision::FilteredLowSales, 0.0, false),
            report(3, FilterDecision::Classified, 0.85, true),
            report(4, FilterDecision::FilteredNoPositiveEvidence, 0.0, false),
            report(5, FilterDecision::Classified, 0.55, false),
        ]
    }

    #[test]
    fn summary_counts() {
        let s = DetectionSummary::from_reports(&batch());
        assert_eq!(s.total, 6);
        assert_eq!(s.filtered_low_sales, 1);
        assert_eq!(s.filtered_no_evidence, 1);
        assert_eq!(s.classified, 4);
        assert_eq!(s.reported, 2);
        assert!((s.report_rate - 0.5).abs() < 1e-12);
        assert!((s.mean_score - (0.95 + 0.15 + 0.85 + 0.55) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn deciles_partition_classified_items() {
        let s = DetectionSummary::from_reports(&batch());
        assert_eq!(s.score_deciles.iter().sum::<usize>(), s.classified);
        assert_eq!(s.score_deciles[9], 1); // 0.95
        assert_eq!(s.score_deciles[8], 1); // 0.85
        assert_eq!(s.score_deciles[1], 1); // 0.15
        assert_eq!(s.score_deciles[5], 1); // 0.55
    }

    #[test]
    fn review_queue_ranked_by_score() {
        let q = DetectionSummary::review_queue(&batch(), 10);
        assert_eq!(q, vec![0, 3]);
        assert_eq!(DetectionSummary::review_queue(&batch(), 1), vec![0]);
    }

    #[test]
    fn empty_batch_is_safe() {
        let s = DetectionSummary::from_reports(&[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.mean_score, 0.0);
        assert_eq!(s.report_rate, 0.0);
        assert!(DetectionSummary::review_queue(&[], 5).is_empty());
    }

    #[test]
    fn display_is_compact() {
        let s = DetectionSummary::from_reports(&batch());
        let text = format!("{s}");
        assert!(text.contains("reported: 2"));
        assert!(text.contains("filtered: 1 low-sales"));
    }

    #[test]
    fn quarantined_items_counted_into_health() {
        let mut reports = batch();
        reports.push(report(6, FilterDecision::Quarantined, 0.0, false));
        reports.push(report(7, FilterDecision::Quarantined, 0.0, false));
        let s = DetectionSummary::from_reports(&reports);
        assert_eq!(s.total, 8);
        assert_eq!(s.quarantined, 2);
        assert_eq!(s.health.items_quarantined, 2);
        assert_eq!(s.classified, 4, "quarantined items are not classified");
    }

    #[test]
    fn crawl_health_attaches_and_computes_fraction() {
        let s = DetectionSummary::from_reports(&batch()).with_crawl_health(3, 900, 100);
        assert_eq!(s.health.items_truncated, 3);
        assert_eq!(s.health.comments_kept, 900);
        assert_eq!(s.health.comments_dropped, 100);
        assert!((s.health.dropped_fraction - 0.1).abs() < 1e-12);
        let text = format!("{s}");
        assert!(text.contains("health:"), "{text}");
        assert!(text.contains("3 truncated"), "{text}");

        let clean = DetectionSummary::from_reports(&batch()).with_crawl_health(0, 0, 0);
        assert_eq!(clean.health.dropped_fraction, 0.0);
    }

    #[test]
    fn review_queue_survives_nan_scores() {
        // Regression: a NaN score must neither panic nor float to the top
        // of the review queue.
        let reports = vec![
            report(0, FilterDecision::Classified, 0.7, true),
            report(1, FilterDecision::Classified, f64::NAN, true),
            report(2, FilterDecision::Classified, 0.9, true),
        ];
        let q = DetectionSummary::review_queue(&reports, 10);
        assert_eq!(q, vec![2, 0, 1], "NaN ranks last");
        assert_eq!(DetectionSummary::review_queue(&reports, 2), vec![2, 0]);
    }

    #[test]
    fn summary_json_roundtrips_with_health() {
        let s = DetectionSummary::from_reports(&batch()).with_crawl_health(1, 10, 5);
        let json = serde_json::to_string(&s).unwrap();
        let back: DetectionSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.health, s.health);
        // older summaries without the section still deserialize
        let legacy = r#"{"total":0,"filtered_low_sales":0,"filtered_no_evidence":0,
            "classified":0,"reported":0,"report_rate":0.0,"mean_score":0.0,
            "score_deciles":[0,0,0,0,0,0,0,0,0,0]}"#;
        let old: DetectionSummary = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.quarantined, 0);
        assert_eq!(old.health, DataHealth::default());
    }

    #[test]
    fn boundary_score_one_lands_in_top_decile() {
        let reports = vec![report(0, FilterDecision::Classified, 1.0, true)];
        let s = DetectionSummary::from_reports(&reports);
        assert_eq!(s.score_deciles[9], 1);
    }
}
