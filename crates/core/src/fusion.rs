//! Velocity-feature fusion for the streaming path (`cats-stream`).
//!
//! Batch CATS scores an item's *archive* — every comment it ever
//! received. The streaming path scores the *firehose*: what the item's
//! comment arrivals look like right now, summarized by sliding-window
//! velocity features (rates, commenter concentration, inter-arrival
//! regularity). This module owns the pieces both sides must agree on:
//!
//! * the velocity feature vector layout ([`VelocityFeatures`]),
//! * the deterministic squash from velocity features to a risk score
//!   ([`velocity_risk`]),
//! * the fusion rule combining that risk with the stage-2 classifier's
//!   score over the windowed comments ([`fuse_scores`]),
//! * the incremental verdict record a streaming scorer emits
//!   ([`StreamVerdict`]).
//!
//! Everything here is pure `f64` arithmetic on already-computed
//! features — bit-identical wherever it runs, which is what lets the
//! stream engine promise identical verdicts at any thread count.

use serde::{Deserialize, Serialize};

/// Number of sliding-window velocity features.
pub const N_VELOCITY_FEATURES: usize = 7;

/// Velocity feature names, in vector order. "Long" is the 5-minute
/// ring, "short" the 30-second ring.
pub const VELOCITY_FEATURE_NAMES: [&str; N_VELOCITY_FEATURES] = [
    "ratePerMinLong",
    "ratePerMinShort",
    "burstAcceleration",
    "commenterConcentrationLong",
    "commenterConcentrationShort",
    "gapEntropyLong",
    "gapEntropyShort",
];

/// One item's velocity feature row at some instant of the stream clock.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VelocityFeatures(pub [f64; N_VELOCITY_FEATURES]);

impl VelocityFeatures {
    /// The row as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Whether every component is finite. Empty windows must produce
    /// all-zero rows, never NaN — asserted by the window tests.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|x| x.is_finite())
    }
}

/// Comment rate (per minute) above which the rate component of
/// [`velocity_risk`] saturates toward 1. Hired campaign waves in the
/// temporal traces fire tens of comments per minute at one item;
/// organic items see well under one.
const RATE_SATURATION_PER_MIN: f64 = 12.0;

/// Squashes a velocity row into a fraud-risk score in `[0, 1]`.
///
/// The shape is deliberate, not learned: velocity features have an
/// *a-priori* fraud direction (the Social Fraud Detection survey's
/// burstiness signal), so a transparent monotone rule keeps the
/// streaming path auditable and free of a second training loop.
///
/// * **rate** — an exponential saturation of the short-window rate:
///   zero for idle items, →1 beyond ~3× [`RATE_SATURATION_PER_MIN`].
///   This is the gate: an item nobody is commenting on carries no
///   velocity risk regardless of the other components.
/// * **concentration** — hired pools recycle commenters, so the
///   long-window repeat-commenter share scales risk up.
/// * **regularity** — rapid-fire waves have machine-like inter-arrival
///   gaps (low entropy); organic arrivals are scattered (high entropy).
pub fn velocity_risk(v: &VelocityFeatures) -> f64 {
    let rate = 1.0 - (-v.0[1] / RATE_SATURATION_PER_MIN).exp();
    let concentration = v.0[3].clamp(0.0, 1.0);
    let regularity = 1.0 / (1.0 + v.0[6].max(0.0));
    (rate * (0.4 + 0.35 * concentration + 0.25 * regularity)).clamp(0.0, 1.0)
}

/// Default weight of the velocity evidence in [`fuse_scores`]: velocity
/// alone (risk 1.0, content score 0.0) cannot cross a 0.5 threshold —
/// content evidence remains necessary, velocity accelerates it.
pub const DEFAULT_FUSION_WEIGHT: f64 = 0.5;

/// Noisy-OR fusion of the stage-2 classifier score over the windowed
/// comments with the velocity risk: `1 − (1−content)·(1−w·risk)`.
///
/// Monotone in both inputs and never *below* the content score, so the
/// streaming verdict can only flag earlier than the batch path would on
/// the same window, never suppress a content-based detection.
pub fn fuse_scores(content_score: f64, velocity_risk: f64, weight: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&weight), "fusion weight in [0,1]");
    1.0 - (1.0 - content_score) * (1.0 - weight * velocity_risk)
}

/// One incremental verdict emitted by a streaming scorer — the unit of
/// the `/v1/ingest` response and of `exp_stream`'s determinism check
/// (two runs are compared verdict-by-verdict on the raw f64 bits).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamVerdict {
    /// Item the verdict is about.
    pub item_id: u64,
    /// Stream watermark (virtual ms) at emission — detection latency is
    /// measured from burst start to this clock.
    pub at_ms: u64,
    /// Comments inside the item's 5-minute window at emission.
    pub window_comments: u32,
    /// Stage-2 classifier score over the windowed comments.
    pub cats_score: f64,
    /// [`velocity_risk`] of the window's velocity features.
    pub velocity_risk: f64,
    /// [`fuse_scores`] of the two.
    pub fused_score: f64,
    /// Whether `fused_score` crossed the detector threshold.
    pub is_fraud: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_item_has_zero_risk() {
        assert_eq!(velocity_risk(&VelocityFeatures::default()), 0.0);
    }

    #[test]
    fn risk_is_monotone_in_rate_and_bounded() {
        let mut prev = 0.0;
        for rate in [0.1, 1.0, 5.0, 20.0, 100.0, 1e6] {
            let v = VelocityFeatures([rate, rate, 1.0, 0.5, 0.5, 2.0, 2.0]);
            let r = velocity_risk(&v);
            assert!(r >= prev, "risk not monotone at rate {rate}");
            assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
    }

    #[test]
    fn fusion_never_lowers_content_score() {
        for content in [0.0, 0.3, 0.7, 0.99] {
            for risk in [0.0, 0.5, 1.0] {
                let fused = fuse_scores(content, risk, DEFAULT_FUSION_WEIGHT);
                assert!(fused >= content);
                assert!(fused <= 1.0);
            }
        }
    }

    #[test]
    fn velocity_alone_cannot_cross_default_threshold() {
        assert!(fuse_scores(0.0, 1.0, DEFAULT_FUSION_WEIGHT) < 0.5 + 1e-12);
    }

    #[test]
    fn name_table_matches_width() {
        assert_eq!(VELOCITY_FEATURE_NAMES.len(), N_VELOCITY_FEATURES);
    }
}
