//! End-to-end CATS pipeline: train once, detect anywhere.
//!
//! Wires the semantic analyzer, feature extractor and detector into the
//! paper's deployment story: pre-train on a labeled dataset (D0), then
//! run on any platform's public data (D1, E-platform) without retraining
//! — the cross-platform property under evaluation in §III–IV. Also hosts
//! the Table VI evaluation slicing (overall frauds vs sufficient-evidence
//! frauds) and detector persistence.

use crate::detector::{DetectionReport, Detector, DetectorConfig};
use crate::features::ItemComments;
use crate::semantic::{SemanticAnalyzer, SemanticConfig};
use cats_ml::metrics::BinaryMetrics;
use cats_ml::Classifier;
use cats_par::Parallelism;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Pipeline construction knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineConfig {
    /// Semantic-analyzer training configuration.
    pub semantic: SemanticConfig,
    /// Detector configuration.
    pub detector: DetectorConfig,
    /// Top-level parallelism knob. [`CatsPipeline::train`] copies it into
    /// the semantic and detector configurations, so setting it here is
    /// enough to parallelize the whole pipeline.
    pub parallelism: Parallelism,
}

/// One labeled training example for the pipeline.
#[derive(Debug, Clone)]
pub struct LabeledItem {
    /// The item's comments.
    pub comments: ItemComments,
    /// 1 = fraud, 0 = normal.
    pub label: u8,
}

/// A trained CATS instance.
pub struct CatsPipeline {
    analyzer: SemanticAnalyzer,
    detector: Detector,
}

impl CatsPipeline {
    /// Trains the full system:
    ///
    /// * the semantic analyzer from `corpus_texts` (word2vec + expansion)
    ///   and the labeled sentiment review corpora;
    /// * the detector's classifier from `training_items`.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        corpus_texts: &[&str],
        positive_seeds: &[String],
        negative_seeds: &[String],
        sentiment_positive: &[&str],
        sentiment_negative: &[&str],
        training_items: &[LabeledItem],
        classifier: Option<Box<dyn Classifier>>,
        config: PipelineConfig,
    ) -> Self {
        let _span = cats_obs::span!("cats.core.pipeline.train", { training_items.len() });
        // The top-level knob wins: stage configs inherit it wholesale.
        let semantic = SemanticConfig { parallelism: config.parallelism, ..config.semantic };
        let detector_cfg = DetectorConfig { parallelism: config.parallelism, ..config.detector };
        let analyzer = SemanticAnalyzer::train(
            corpus_texts,
            positive_seeds,
            negative_seeds,
            sentiment_positive,
            sentiment_negative,
            semantic,
        );
        let mut detector = match classifier {
            Some(c) => Detector::new(detector_cfg, c),
            None => Detector::with_default_classifier(detector_cfg),
        };
        let items: Vec<&ItemComments> = training_items.iter().map(|l| &l.comments).collect();
        let labels: Vec<u8> = training_items.iter().map(|l| l.label).collect();
        detector.fit(&items, &labels, &analyzer);
        Self { analyzer, detector }
    }

    /// [`CatsPipeline::train`] with crash recovery. Long-running stages
    /// checkpoint into `store` as they complete — word2vec epochs under
    /// `"w2v"`, the finished analyzer under `"analyzer"`, GBT boosting
    /// rounds under `"gbt"` — so a rerun with the same inputs, config and
    /// store resumes after the last checkpoint instead of starting over.
    /// Every stage is deterministic, so the resumed model is
    /// bit-identical to one trained without interruption. Checkpoints
    /// from different inputs or configs are detected by fingerprint and
    /// ignored; all slots are cleared once training completes.
    ///
    /// A custom `classifier` trains without round-level checkpoints (the
    /// `Classifier` trait has no checkpoint hook); the analyzer stages
    /// still resume.
    #[allow(clippy::too_many_arguments)]
    pub fn train_resumable(
        corpus_texts: &[&str],
        positive_seeds: &[String],
        negative_seeds: &[String],
        sentiment_positive: &[&str],
        sentiment_negative: &[&str],
        training_items: &[LabeledItem],
        classifier: Option<Box<dyn Classifier>>,
        config: PipelineConfig,
        store: &cats_io::CheckpointStore,
    ) -> Self {
        let _span = cats_obs::span!("cats.core.pipeline.train", { training_items.len() });
        let semantic = SemanticConfig { parallelism: config.parallelism, ..config.semantic };
        let detector_cfg = DetectorConfig { parallelism: config.parallelism, ..config.detector };
        let fp = train_fingerprint(
            corpus_texts,
            positive_seeds,
            negative_seeds,
            sentiment_positive,
            sentiment_negative,
            training_items,
            &config,
        );

        let analyzer = 'analyzer: {
            if let Some(bytes) = store.load("analyzer") {
                match serde_json::from_slice::<AnalyzerCheckpoint>(&bytes) {
                    Ok(c) if c.fingerprint == fp => {
                        cats_obs::counter("cats.core.train.resumed_stages").inc();
                        // The finished analyzer supersedes any epoch-level
                        // word2vec state.
                        store.clear("w2v");
                        break 'analyzer c.analyzer;
                    }
                    _ => {
                        cats_obs::counter("cats.core.train.ckpt_rejected").inc();
                        eprintln!("cats-core: ignoring mismatched analyzer checkpoint");
                    }
                }
            }
            let analyzer = SemanticAnalyzer::train_checkpointed(
                corpus_texts,
                positive_seeds,
                negative_seeds,
                sentiment_positive,
                sentiment_negative,
                semantic,
                store,
            );
            let state = AnalyzerCheckpoint { fingerprint: fp, analyzer };
            match serde_json::to_vec(&state) {
                Ok(bytes) => {
                    if let Err(e) = store.save("analyzer", &bytes) {
                        eprintln!("cats-core: analyzer checkpoint save failed: {e}");
                    }
                }
                Err(e) => eprintln!("cats-core: analyzer checkpoint encode failed: {e}"),
            }
            state.analyzer
        };

        let items: Vec<&ItemComments> = training_items.iter().map(|l| &l.comments).collect();
        let labels: Vec<u8> = training_items.iter().map(|l| l.label).collect();
        let detector = match classifier {
            Some(c) => {
                let mut d = Detector::new(detector_cfg, c);
                d.fit(&items, &labels, &analyzer);
                d
            }
            None => {
                // The default-GBT path fits the concrete model directly so
                // boosting rounds can checkpoint; the dataset cleaning is
                // shared with Detector::fit_features via training_dataset.
                let rows = crate::features::extract_batch(
                    &items,
                    &analyzer,
                    detector_cfg.parallelism.threads,
                );
                let data = crate::detector::training_dataset(&rows, &labels);
                assert!(!data.is_empty(), "no finite training rows");
                let mut gbt =
                    cats_ml::gbt::GradientBoostedTrees::new(cats_ml::gbt::GbtConfig::default());
                gbt.fit_checkpointed(&data, store, "gbt", GBT_CKPT_EVERY);
                let mut d = Detector::new(detector_cfg, Box::new(gbt));
                d.mark_fitted();
                d
            }
        };
        store.clear_all();
        Self { analyzer, detector }
    }

    /// Builds a pipeline from a pre-trained analyzer and detector.
    pub fn from_parts(analyzer: SemanticAnalyzer, detector: Detector) -> Self {
        Self { analyzer, detector }
    }

    /// The semantic analyzer.
    pub fn analyzer(&self) -> &SemanticAnalyzer {
        &self.analyzer
    }

    /// The detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Mutable access to the detector (e.g. for threshold recalibration).
    pub fn detector_mut(&mut self) -> &mut Detector {
        &mut self.detector
    }

    /// Detects frauds in a batch of items (with their public sales
    /// volumes).
    ///
    /// Accepts owned items or references (`&[ItemComments]` and
    /// `&[&ItemComments]` both work), so callers assembling batches out
    /// of borrowed per-request item lists — the serving micro-batcher —
    /// never clone comment vectors onto the hot path.
    pub fn detect<T>(&self, items: &[T], sales: &[u64]) -> Vec<DetectionReport>
    where
        T: std::borrow::Borrow<ItemComments> + Sync,
    {
        let _span = cats_obs::span!("cats.core.pipeline.detect", { items.len() });
        self.detector.detect(items, sales, &self.analyzer)
    }

    /// Evaluates predictions against ground-truth labels, overall.
    pub fn evaluate(reports: &[DetectionReport], labels: &[u8]) -> BinaryMetrics {
        let preds: Vec<bool> = reports.iter().map(|r| r.is_fraud).collect();
        BinaryMetrics::compute(labels, &preds)
    }
}

/// Table VI slices: the paper reports metrics for "the overall fraud
/// items" and separately for "fraud items labeled with sufficient
/// evidences" (recall restricted to that slice; precision is shared
/// because the detector emits one report list).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationSlices {
    /// Metrics against all fraud labels.
    pub overall: BinaryMetrics,
    /// Metrics where only sufficient-evidence frauds count as positive;
    /// expert-labeled frauds are excluded from the evaluation set (they
    /// are neither positives nor negatives in this slice).
    pub sufficient_evidence: BinaryMetrics,
}

/// Label provenance for slicing (mirrors `cats_platform::ItemLabel`
/// without depending on the platform crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelKind {
    /// Fraud backed by transaction evidence.
    FraudSufficient,
    /// Fraud identified by expert analysis.
    FraudExpert,
    /// Normal item.
    Normal,
}

impl EvaluationSlices {
    /// Computes both Table VI rows from reports plus label provenance.
    pub fn compute(reports: &[DetectionReport], kinds: &[LabelKind]) -> Self {
        assert_eq!(reports.len(), kinds.len(), "reports/labels mismatch");
        let preds: Vec<bool> = reports.iter().map(|r| r.is_fraud).collect();

        let overall_labels: Vec<u8> =
            kinds.iter().map(|k| u8::from(!matches!(k, LabelKind::Normal))).collect();
        let overall = BinaryMetrics::compute(&overall_labels, &preds);

        // Sufficient-evidence slice: drop expert-labeled frauds entirely.
        let keep: Vec<usize> = kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| !matches!(k, LabelKind::FraudExpert))
            .map(|(i, _)| i)
            .collect();
        let se_labels: Vec<u8> = keep
            .iter()
            .map(|&i| u8::from(matches!(kinds[i], LabelKind::FraudSufficient)))
            .collect();
        let se_preds: Vec<bool> = keep.iter().map(|&i| preds[i]).collect();
        let sufficient_evidence = BinaryMetrics::compute(&se_labels, &se_preds);

        Self { overall, sufficient_evidence }
    }
}

/// Picks the decision threshold at the *balanced* operating point —
/// where precision is closest to recall (ties broken by higher F1) —
/// from scored reports against holdout labels. This is the calibration a
/// production deployment runs on a labeled validation slice before
/// applying the detector to an unlabeled platform.
///
/// Returns the default threshold 0.5 when the holdout has no usable
/// signal (no positive labels or no scored items).
pub fn calibrate_balanced_threshold(reports: &[DetectionReport], labels: &[u8]) -> f64 {
    assert_eq!(reports.len(), labels.len(), "reports/labels mismatch");
    // Candidate thresholds: the distinct scores of classified items.
    let mut scores: Vec<f64> =
        reports.iter().filter(|r| r.features.is_some()).map(|r| r.score).collect();
    if scores.is_empty() || !labels.contains(&1) {
        return 0.5;
    }
    scores.sort_by(|a, b| a.total_cmp(b));
    scores.dedup();

    let mut best = (f64::INFINITY, f64::NEG_INFINITY, 0.5); // (|P−R|, F1, threshold)
    for &t in &scores {
        let preds: Vec<bool> =
            reports.iter().map(|r| r.features.is_some() && r.score >= t).collect();
        let m = BinaryMetrics::compute(labels, &preds);
        if m.precision == 0.0 && m.recall == 0.0 {
            continue;
        }
        let gap = (m.precision - m.recall).abs();
        if gap < best.0 - 1e-12 || (gap < best.0 + 1e-12 && m.f1 > best.1) {
            best = (gap, m.f1, t);
        }
    }
    best.2
}

/// Picks the smallest threshold whose holdout precision reaches
/// `target_precision` (maximizing recall under the precision constraint).
/// Falls back to the highest-precision threshold when the target is
/// unreachable, and to 0.5 when the holdout carries no signal.
pub fn calibrate_precision_threshold(
    reports: &[DetectionReport],
    labels: &[u8],
    target_precision: f64,
) -> f64 {
    assert_eq!(reports.len(), labels.len(), "reports/labels mismatch");
    let mut scores: Vec<f64> =
        reports.iter().filter(|r| r.features.is_some()).map(|r| r.score).collect();
    if scores.is_empty() || !labels.contains(&1) {
        return 0.5;
    }
    scores.sort_by(|a, b| a.total_cmp(b));
    scores.dedup();

    let metrics_at = |t: f64| {
        let preds: Vec<bool> =
            reports.iter().map(|r| r.features.is_some() && r.score >= t).collect();
        BinaryMetrics::compute(labels, &preds)
    };
    // Smallest threshold meeting the precision target (recall decreases
    // with threshold, so the first hit maximizes recall).
    let mut best_fallback = (0.0f64, 0.5f64); // (precision, threshold)
    for &t in &scores {
        let m = metrics_at(t);
        if m.precision >= target_precision && m.recall > 0.0 {
            return t;
        }
        if m.precision > best_fallback.0 && m.recall > 0.0 {
            best_fallback = (m.precision, t);
        }
    }
    best_fallback.1
}

/// Boosting rounds between GBT checkpoints in
/// [`CatsPipeline::train_resumable`].
const GBT_CKPT_EVERY: usize = 10;

/// Persisted completed-analyzer stage of a resumable training run.
#[derive(Serialize, Deserialize)]
struct AnalyzerCheckpoint {
    /// [`train_fingerprint`] of the run that produced it.
    fingerprint: u32,
    analyzer: SemanticAnalyzer,
}

fn digest_texts(acc: &mut String, label: &str, texts: &[&str]) {
    use std::fmt::Write as _;
    let _ = write!(acc, "{label}:{}:", texts.len());
    for t in texts {
        let _ = write!(acc, "{:08x},", cats_io::crc32(t.as_bytes()));
    }
}

/// Fingerprint tying resumable-training checkpoints to one (inputs,
/// config) pair: CRCs of every input text, the training labels and
/// tokens, and the full config (`Debug` form — conservative: any config
/// change, including parallelism, restarts stage training; the w2v and
/// gbt stage checkpoints carry their own thread-count-independent
/// fingerprints).
fn train_fingerprint(
    corpus_texts: &[&str],
    positive_seeds: &[String],
    negative_seeds: &[String],
    sentiment_positive: &[&str],
    sentiment_negative: &[&str],
    training_items: &[LabeledItem],
    config: &PipelineConfig,
) -> u32 {
    use std::fmt::Write as _;
    let mut acc = String::new();
    digest_texts(&mut acc, "corpus", corpus_texts);
    let pos: Vec<&str> = positive_seeds.iter().map(String::as_str).collect();
    let neg: Vec<&str> = negative_seeds.iter().map(String::as_str).collect();
    digest_texts(&mut acc, "pos_seeds", &pos);
    digest_texts(&mut acc, "neg_seeds", &neg);
    digest_texts(&mut acc, "sent_pos", sentiment_positive);
    digest_texts(&mut acc, "sent_neg", sentiment_negative);
    let _ = write!(acc, "items:{}:", training_items.len());
    for it in training_items {
        let mut item_acc = String::new();
        for toks in &it.comments.tokens {
            for t in toks {
                item_acc.push_str(t);
                item_acc.push('\x1f');
            }
            item_acc.push('\x1e');
        }
        let _ = write!(acc, "{}@{:08x},", it.label, cats_io::crc32(item_acc.as_bytes()));
    }
    let _ = write!(acc, "config:{config:?}");
    cats_io::crc32(acc.as_bytes())
}

/// Why loading or saving a persisted pipeline snapshot failed.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written, was empty, truncated, or
    /// failed its checksum — see [`cats_io::IoError`] for the exact
    /// corruption class.
    Io(cats_io::IoError),
    /// The payload was intact on disk but is not a valid snapshot (bad
    /// JSON, non-UTF-8 bytes, or an unsupported format version).
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "{e}"),
            Self::Format(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<cats_io::IoError> for PersistError {
    fn from(e: cats_io::IoError) -> Self {
        Self::Io(e)
    }
}

/// Newest snapshot format this build writes (and the highest it reads).
///
/// History:
/// * **1** — implicit version: `{analyzer, detector_config, gbt}` with no
///   `format_version` field. Still readable: the field defaults to 1.
/// * **2** — adds `format_version`, written explicitly. The payload is
///   unchanged, so 1 and 2 only differ in self-description.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

fn snapshot_format_default() -> u32 {
    1
}

/// Serializable snapshot of a trained pipeline.
///
/// The detector's classifier is stored as the default GBT model; custom
/// classifiers need their own persistence.
#[derive(Serialize, Deserialize)]
pub struct PipelineSnapshot {
    /// Snapshot format version (see [`SNAPSHOT_FORMAT_VERSION`]).
    /// Absent in pre-versioning snapshots, which deserialize as 1.
    #[serde(default = "snapshot_format_default")]
    pub format_version: u32,
    /// The trained analyzer (lexicon + sentiment model).
    pub analyzer: SemanticAnalyzer,
    /// Detector configuration.
    pub detector_config: DetectorConfig,
    /// The trained GBT classifier.
    pub gbt: cats_ml::gbt::GradientBoostedTrees,
    /// Training-time feature distributions (drift-monitor anchor).
    /// Optional: absent in snapshots produced before drift monitoring
    /// existed, and omitted from JSON when absent, so pre-existing
    /// artifacts round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub feature_reference: Option<crate::features::FeatureReferenceSet>,
}

impl PipelineSnapshot {
    /// Attaches a training-time feature reference (builder style) — the
    /// drift-monitor anchor persisted in the `featref` IO2 section.
    pub fn with_feature_reference(mut self, fr: crate::features::FeatureReferenceSet) -> Self {
        self.feature_reference = Some(fr);
        self
    }

    /// Serializes the snapshot to JSON (the legacy interchange format;
    /// [`PipelineSnapshot::to_io2_bytes`] is the binary hot path).
    pub fn to_json(&self) -> Result<String, PersistError> {
        serde_json::to_string(self).map_err(|e| PersistError::Format(format!("model: {e}")))
    }

    /// Parses a snapshot from JSON, rejecting versions newer than this
    /// build understands (a model hot-swap watcher must never load half
    /// a format it cannot interpret, so the check happens before any
    /// field is trusted).
    pub fn from_json(json: &str) -> Result<Self, PersistError> {
        let snap: PipelineSnapshot =
            serde_json::from_str(json).map_err(|e| PersistError::Format(format!("model: {e}")))?;
        if snap.format_version > SNAPSHOT_FORMAT_VERSION {
            return Err(PersistError::Format(format!(
                "model: snapshot format {} is newer than supported {}",
                snap.format_version, SNAPSHOT_FORMAT_VERSION
            )));
        }
        Ok(snap)
    }

    /// Encodes the snapshot as a `CATS-IO2` container: a `meta` section
    /// carrying the snapshot format version, the detector configuration
    /// as a small JSON section, the lexicon as sorted length-prefixed
    /// word lists, and the sentiment and GBT models as flat binary
    /// arrays. The encoding is canonical — decoding and re-encoding
    /// reproduces the bytes exactly — which is what the `convert`
    /// round-trip verification checks.
    pub fn to_io2_bytes(&self) -> Result<Vec<u8>, PersistError> {
        Ok(self.io2_builder()?.finish())
    }

    fn io2_builder(&self) -> Result<cats_io::io2::Io2Builder, PersistError> {
        use cats_io::io2::{Enc, Io2Builder};
        let mut meta = Enc::new();
        meta.u32(self.format_version);

        let detector = serde_json::to_vec(&self.detector_config)
            .map_err(|e| PersistError::Format(format!("model: detector config: {e}")))?;

        // Lexicon sets iterate in hash order; sort for a canonical layout.
        let lex = self.analyzer.lexicon();
        let mut pos: Vec<&str> = lex.positive_words().collect();
        let mut neg: Vec<&str> = lex.negative_words().collect();
        pos.sort_unstable();
        neg.sort_unstable();
        let mut lexicon = Enc::new();
        lexicon.u64(pos.len() as u64);
        for w in pos {
            lexicon.str(w);
        }
        lexicon.u64(neg.len() as u64);
        for w in neg {
            lexicon.str(w);
        }

        let gbt =
            self.gbt.to_io2_bytes().map_err(|e| PersistError::Format(format!("model: {e}")))?;

        let mut b = Io2Builder::new();
        b.section("meta", meta.into_bytes());
        b.section("detector", detector);
        b.section("lexicon", lexicon.into_bytes());
        b.section("sentiment", self.analyzer.sentiment().to_io2_payload());
        b.section("gbt", gbt);
        // Optional trailing section: emitted only when present, so
        // reference-less snapshots keep their exact pre-drift byte
        // layout (the canonical-encoding property).
        if let Some(fr) = &self.feature_reference {
            let mut enc = Enc::new();
            enc.u64(fr.rows);
            enc.u32(fr.per_feature.len() as u32);
            for col in &fr.per_feature {
                enc.f64s(col);
            }
            b.section("featref", enc.into_bytes());
        }
        Ok(b)
    }

    /// Decodes a `CATS-IO2` snapshot container. Section CRCs have already
    /// been verified by the parser; unknown sections from future writers
    /// are skipped, and a `meta` format version newer than this build
    /// understands is rejected up front.
    pub fn from_io2_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        use cats_io::io2::{Dec, Io2File};
        let file = Io2File::parse(bytes, "snapshot")?;
        let fmt = |e: String| PersistError::Format(format!("model: {e}"));

        let mut meta = Dec::new(file.require("meta", "snapshot")?);
        let format_version = meta.u32().map_err(fmt)?;
        if format_version > SNAPSHOT_FORMAT_VERSION {
            return Err(PersistError::Format(format!(
                "model: snapshot format {format_version} is newer than supported \
                 {SNAPSHOT_FORMAT_VERSION}"
            )));
        }

        let detector_config: DetectorConfig =
            serde_json::from_slice(file.require("detector", "snapshot")?)
                .map_err(|e| PersistError::Format(format!("model: detector config: {e}")))?;

        let mut lex = Dec::new(file.require("lexicon", "snapshot")?);
        let read_words = |d: &mut Dec<'_>| -> Result<Vec<String>, String> {
            let n = d.u64()? as usize;
            // Every word costs at least its 8-byte length prefix: reject a
            // lying count before trusting it for an allocation.
            if n.checked_mul(8).is_none_or(|b| b > d.remaining()) {
                return Err(format!("lexicon word count {n} exceeds section size"));
            }
            let mut words = Vec::with_capacity(n);
            for _ in 0..n {
                words.push(d.str()?);
            }
            Ok(words)
        };
        let positive = read_words(&mut lex).map_err(fmt)?;
        let negative = read_words(&mut lex).map_err(fmt)?;
        let lexicon = cats_text::Lexicon::new(positive, negative);

        let sentiment = cats_sentiment::SentimentModel::from_io2_payload(
            file.require("sentiment", "snapshot")?,
        )
        .map_err(fmt)?;

        let gbt =
            cats_ml::gbt::GradientBoostedTrees::from_io2_bytes(file.require("gbt", "snapshot")?)
                .map_err(fmt)?;

        let feature_reference = match file.section("featref") {
            Some(payload) => {
                let mut d = Dec::new(payload);
                let rows = d.u64().map_err(fmt)?;
                let n = d.u32().map_err(fmt)? as usize;
                // Every column costs at least its 8-byte count prefix:
                // reject a lying feature count before allocating.
                if n.checked_mul(8).is_none_or(|b| b > d.remaining()) {
                    return Err(PersistError::Format(format!(
                        "model: featref column count {n} exceeds section size"
                    )));
                }
                let mut per_feature = Vec::with_capacity(n);
                for _ in 0..n {
                    per_feature.push(d.f64s().map_err(fmt)?);
                }
                Some(crate::features::FeatureReferenceSet { rows, per_feature })
            }
            None => None,
        };

        Ok(Self {
            format_version,
            analyzer: SemanticAnalyzer::from_parts(lexicon, sentiment),
            detector_config,
            gbt,
            feature_reference,
        })
    }

    /// Parses a snapshot from raw bytes, sniffing the format by magic:
    /// `CATS-IO2` containers decode through the binary path, anything
    /// else must be UTF-8 JSON. This is the single entry point the serve
    /// layer and the CLI share, so every caller accepts both formats.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        if cats_io::io2::is_io2(bytes) {
            return Self::from_io2_bytes(bytes);
        }
        let json = std::str::from_utf8(bytes)
            .map_err(|e| PersistError::Format(format!("model: snapshot is not UTF-8: {e}")))?;
        Self::from_json(json)
    }

    /// Writes the snapshot to `path` atomically (temp file + fsync +
    /// rename) in the binary `CATS-IO2` format, whose per-section CRC32s
    /// catch truncation, torn rewrites and bit flips at load instead of
    /// producing a silently wrong model.
    pub fn save(&self, path: &Path) -> Result<(), PersistError> {
        self.io2_builder()?.write(path)?;
        Ok(())
    }

    /// Writes the snapshot as checksummed JSON (the pre-IO2 on-disk
    /// format) — kept for interchange and for the `convert` subcommand.
    pub fn save_json(&self, path: &Path) -> Result<(), PersistError> {
        let json = self.to_json()?;
        cats_io::write_checksummed(path, json.as_bytes())?;
        Ok(())
    }

    /// Loads a snapshot written by [`PipelineSnapshot::save`] (binary
    /// `CATS-IO2`), [`PipelineSnapshot::save_json`] (`CATS-IO1`-framed
    /// JSON), or hand-written plain JSON — the format is sniffed by
    /// magic. Never panics and never yields a half-loaded model: every
    /// corruption class surfaces as a typed [`PersistError`].
    pub fn load(path: &Path) -> Result<Self, PersistError> {
        // `read_checksummed` verifies and strips a CATS-IO1 frame and
        // passes any other byte stream (IO2, bare JSON) through verbatim.
        let bytes = cats_io::read_checksummed(path)?;
        Self::from_bytes(&bytes)
    }
}

impl CatsPipeline {
    /// Snapshots a pipeline whose classifier is the provided trained GBT.
    /// (The `Classifier` trait is object-safe and therefore not
    /// serializable as a trait object; callers keep the concrete model.)
    pub fn snapshot(
        analyzer: SemanticAnalyzer,
        detector_config: DetectorConfig,
        gbt: cats_ml::gbt::GradientBoostedTrees,
    ) -> PipelineSnapshot {
        PipelineSnapshot {
            format_version: SNAPSHOT_FORMAT_VERSION,
            analyzer,
            detector_config,
            gbt,
            feature_reference: None,
        }
    }

    /// Restores a pipeline from a snapshot.
    pub fn restore(snapshot: PipelineSnapshot) -> Self {
        let mut detector = Detector::new(snapshot.detector_config, Box::new(snapshot.gbt));
        // The stored model is already trained; mark the detector usable.
        detector.mark_fitted();
        Self { analyzer: snapshot.analyzer, detector }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::FilterDecision;

    fn corpus() -> Vec<String> {
        let mut texts = Vec::new();
        for i in 0..250 {
            let v = i % 3;
            texts.push(format!("hao{v} zan{v} hao{v} bang{v} kuai du"));
            texts.push(format!("cha{v} lan{v} cha{v} huai{v} man du"));
            texts.push("he zi kuai di shou dao".to_string());
        }
        texts
    }

    fn fraud_item(i: usize) -> ItemComments {
        ItemComments::from_texts([
            format!("hao0 hao0 zan1 ! hao0 bang2 w{i} ， hao0 hao0 zan0 hao1 hao1").as_str(),
            "hen hao0 zan2 ！ hao2 hao0 hao0 bang0 hao0",
        ])
    }

    fn normal_item(i: usize) -> ItemComments {
        ItemComments::from_texts([format!("shu hao0 kan w{i}").as_str(), "dongxi cha0 le dian"])
    }

    fn trained() -> CatsPipeline {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let mut training = Vec::new();
        for i in 0..30 {
            training.push(LabeledItem { comments: fraud_item(i), label: 1 });
            training.push(LabeledItem { comments: normal_item(i), label: 0 });
        }
        CatsPipeline::train(
            &refs,
            &["hao0".to_string()],
            &["cha0".to_string()],
            &["hao0 zan0 bang0 hao1", "zan1 hao2 bang1"],
            &["cha0 lan0 huai0", "lan1 cha2 huai2"],
            &training,
            None,
            PipelineConfig::default(),
        )
    }

    #[test]
    fn end_to_end_train_and_detect() {
        let p = trained();
        let items = vec![fraud_item(77), normal_item(77)];
        let reports = p.detect(&items, &[50, 50]);
        assert!(reports[0].is_fraud);
        assert!(!reports[1].is_fraud);
        let m = CatsPipeline::evaluate(&reports, &[1, 0]);
        assert_eq!(m.accuracy, 1.0);
    }

    #[test]
    fn slices_split_by_label_provenance() {
        let p = trained();
        let items = vec![fraud_item(1), fraud_item(2), normal_item(3), normal_item(4)];
        let reports = p.detect(&items, &[50, 50, 50, 50]);
        let kinds = vec![
            LabelKind::FraudSufficient,
            LabelKind::FraudExpert,
            LabelKind::Normal,
            LabelKind::Normal,
        ];
        let slices = EvaluationSlices::compute(&reports, &kinds);
        // overall sees 2 positives, SE slice sees 1 positive and 3 rows
        assert_eq!(slices.overall.confusion.total(), 4);
        assert_eq!(slices.sufficient_evidence.confusion.total(), 3);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
        use cats_ml::Classifier as _;
        let p = trained();
        // Re-train a concrete GBT on the same features to snapshot it.
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            items.push(fraud_item(i));
            labels.push(1u8);
            items.push(normal_item(i));
            labels.push(0u8);
        }
        let rows = crate::features::extract_batch(&items, p.analyzer(), 0);
        let mut data = cats_ml::Dataset::new(crate::features::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        gbt.fit(&data);

        let snap = CatsPipeline::snapshot(p.analyzer().clone(), DetectorConfig::default(), gbt);
        let json = serde_json::to_string(&snap).unwrap();
        let restored: PipelineSnapshot = serde_json::from_str(&json).unwrap();
        let p2 = CatsPipeline::restore(restored);

        let test_items = vec![fraud_item(88), normal_item(88)];
        let reports = p2.detect(&test_items, &[50, 50]);
        assert!(reports[0].is_fraud);
        assert!(!reports[1].is_fraud);
    }

    #[test]
    fn snapshot_version_is_written_and_validated() {
        use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
        let snap = CatsPipeline::snapshot(
            trained().analyzer().clone(),
            DetectorConfig::default(),
            GradientBoostedTrees::new(GbtConfig::default()),
        );
        assert_eq!(snap.format_version, SNAPSHOT_FORMAT_VERSION);
        let json = snap.to_json().unwrap();
        assert!(json.contains("\"format_version\""), "version field serialized");

        // Round-trip keeps the version.
        let back = PipelineSnapshot::from_json(&json).unwrap();
        assert_eq!(back.format_version, SNAPSHOT_FORMAT_VERSION);

        // Pre-versioning snapshots (no field) read back as format 1.
        let legacy =
            json.replacen(&format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION},"), "", 1);
        assert_ne!(legacy, json, "field was present to strip");
        let old = PipelineSnapshot::from_json(&legacy).unwrap();
        assert_eq!(old.format_version, 1);

        // Future formats are rejected up front.
        let future = json.replacen(
            &format!("\"format_version\":{SNAPSHOT_FORMAT_VERSION},"),
            &format!("\"format_version\":{},", SNAPSHOT_FORMAT_VERSION + 1),
            1,
        );
        let err =
            PipelineSnapshot::from_json(&future).err().expect("future format must be rejected");
        assert!(err.to_string().contains("newer than supported"), "{err}");
    }

    #[test]
    fn io2_snapshot_roundtrips_and_scores_bit_identically() {
        use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
        use cats_ml::Classifier as _;
        let p = trained();
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            items.push(fraud_item(i));
            labels.push(1u8);
            items.push(normal_item(i));
            labels.push(0u8);
        }
        let rows = crate::features::extract_batch(&items, p.analyzer(), 0);
        let mut data = cats_ml::Dataset::new(crate::features::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        gbt.fit(&data);

        let snap = CatsPipeline::snapshot(p.analyzer().clone(), DetectorConfig::default(), gbt);
        let json = snap.to_json().unwrap();
        let bytes = snap.to_io2_bytes().unwrap();
        assert!(cats_io::io2::is_io2(&bytes));

        // Canonical: decode → encode reproduces the container exactly.
        let back = PipelineSnapshot::from_io2_bytes(&bytes).unwrap();
        assert_eq!(back.to_io2_bytes().unwrap(), bytes, "canonical IO2 encoding");

        // `from_bytes` sniffs both formats, and the two decoded pipelines
        // must produce byte-equal verdicts at every thread count.
        let test_items: Vec<ItemComments> = (0..12)
            .map(|i| if i % 2 == 0 { fraud_item(100 + i) } else { normal_item(i) })
            .collect();
        let sales = vec![50u64; test_items.len()];
        for threads in [1usize, 2, 8] {
            let par = Parallelism { threads, deterministic: true };
            let mut sa = PipelineSnapshot::from_bytes(&bytes).unwrap();
            let mut sb = PipelineSnapshot::from_bytes(json.as_bytes()).unwrap();
            sa.detector_config.parallelism = par;
            sb.detector_config.parallelism = par;
            let ra = CatsPipeline::restore(sa).detect(&test_items, &sales);
            let rb = CatsPipeline::restore(sb).detect(&test_items, &sales);
            for (x, y) in ra.iter().zip(&rb) {
                assert_eq!(x.score.to_bits(), y.score.to_bits(), "threads={threads}");
                assert_eq!(x.is_fraud, y.is_fraud);
            }
        }
    }

    #[test]
    fn feature_reference_roundtrips_in_io2_and_json() {
        use crate::features::{extract_batch, FeatureReferenceSet, N_FEATURES};
        use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
        use cats_ml::Classifier as _;
        let p = trained();
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            items.push(fraud_item(i));
            labels.push(1u8);
            items.push(normal_item(i));
            labels.push(0u8);
        }
        let rows = extract_batch(&items, p.analyzer(), 0);
        let mut data = cats_ml::Dataset::new(N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        gbt.fit(&data);

        let fr = FeatureReferenceSet::from_rows(&rows);
        assert_eq!(fr.rows, rows.len() as u64);
        assert_eq!(fr.per_feature.len(), N_FEATURES);
        assert!(!fr.is_empty());
        assert!(fr
            .per_feature
            .iter()
            .all(|c| c.windows(2).all(|w| w[0] <= w[1])
                && c.len() <= FeatureReferenceSet::MAX_SAMPLE));
        assert_eq!(fr.references().len(), N_FEATURES);

        let snap = CatsPipeline::snapshot(p.analyzer().clone(), DetectorConfig::default(), gbt)
            .with_feature_reference(fr.clone());

        // IO2 round-trip is canonical WITH the optional section present.
        let bytes = snap.to_io2_bytes().unwrap();
        let back = PipelineSnapshot::from_io2_bytes(&bytes).unwrap();
        assert_eq!(back.feature_reference.as_ref(), Some(&fr));
        assert_eq!(back.to_io2_bytes().unwrap(), bytes, "canonical with featref");

        // JSON carries it too, and omits the field when absent.
        let json = snap.to_json().unwrap();
        assert!(json.contains("\"feature_reference\""));
        let back_json = PipelineSnapshot::from_json(&json).unwrap();
        assert_eq!(back_json.feature_reference.as_ref(), Some(&fr));
        let bare = CatsPipeline::snapshot(
            snap.analyzer.clone(),
            DetectorConfig::default(),
            GradientBoostedTrees::new(GbtConfig::default()),
        );
        assert!(!bare.to_json().unwrap().contains("feature_reference"));
        assert!(bare.to_io2_bytes().unwrap().len() < bytes.len());
    }

    #[test]
    fn io2_snapshot_save_load_and_legacy_json_fallback() {
        use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
        let snap = CatsPipeline::snapshot(
            trained().analyzer().clone(),
            DetectorConfig::default(),
            GradientBoostedTrees::new(GbtConfig::default()),
        );
        let dir = std::env::temp_dir().join(format!("cats_snap_io2_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // save() writes IO2; load() reads it back.
        let binary = dir.join("model.cats");
        snap.save(&binary).unwrap();
        assert!(cats_io::io2::is_io2(&std::fs::read(&binary).unwrap()));
        let loaded = PipelineSnapshot::load(&binary).unwrap();
        assert_eq!(loaded.format_version, snap.format_version);

        // save_json() writes the legacy CATS-IO1-framed JSON; load() sniffs
        // and falls back. Bare JSON (no frame at all) also loads.
        let legacy = dir.join("model.json");
        snap.save_json(&legacy).unwrap();
        PipelineSnapshot::load(&legacy).unwrap();
        let bare = dir.join("bare.json");
        std::fs::write(&bare, snap.to_json().unwrap()).unwrap();
        PipelineSnapshot::load(&bare).unwrap();

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn detect_accepts_borrowed_item_slices() {
        let p = trained();
        let owned = vec![fraud_item(12), normal_item(12)];
        let borrowed: Vec<&ItemComments> = owned.iter().collect();
        let a = p.detect(&owned, &[50, 50]);
        let b = p.detect(&borrowed, &[50, 50]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "borrowed batch must score identically"
            );
            assert_eq!(x.is_fraud, y.is_fraud);
        }
    }

    #[test]
    fn calibration_survives_nan_scores() {
        // Regression: a NaN score among the candidate thresholds must not
        // panic the sort or be chosen as the operating point.
        use crate::features::{FeatureVector, N_FEATURES};
        let mk = |index: usize, score: f64| DetectionReport {
            index,
            filter: FilterDecision::Classified,
            score,
            is_fraud: score >= 0.5,
            features: Some(FeatureVector([0.0; N_FEATURES])),
        };
        let reports = vec![mk(0, 0.9), mk(1, 0.2), mk(2, f64::NAN), mk(3, 0.8), mk(4, 0.1)];
        let labels = [1, 0, 0, 1, 0];
        let t = calibrate_balanced_threshold(&reports, &labels);
        assert!(t.is_finite(), "got {t}");
        assert!((0.0..=1.0).contains(&t));
        let tp = calibrate_precision_threshold(&reports, &labels, 0.9);
        assert!(tp.is_finite(), "got {tp}");
    }

    #[test]
    fn filtered_items_flow_through_pipeline() {
        let p = trained();
        let items = vec![fraud_item(5)];
        let reports = p.detect(&items, &[1]);
        assert_eq!(reports[0].filter, FilterDecision::FilteredLowSales);
        assert!(!reports[0].is_fraud);
    }

    #[test]
    fn train_resumable_survives_kill_and_matches_uninterrupted() {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let mut training = Vec::new();
        for i in 0..30 {
            training.push(LabeledItem { comments: fraud_item(i), label: 1 });
            training.push(LabeledItem { comments: normal_item(i), label: 0 });
        }
        let dir = std::env::temp_dir().join(format!("cats_pipeline_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = cats_io::CheckpointStore::open(&dir).expect("open checkpoint store");
        let run = |store: &cats_io::CheckpointStore| {
            CatsPipeline::train_resumable(
                &refs,
                &["hao0".to_string()],
                &["cha0".to_string()],
                &["hao0 zan0 bang0 hao1", "zan1 hao2 bang1"],
                &["cha0 lan0 huai0", "lan1 cha2 huai2"],
                &training,
                None,
                PipelineConfig::default(),
                store,
            )
        };

        let uninterrupted = run(&store);

        // Kill the second run mid-word2vec (after its 2nd epoch save),
        // then resume; the result must match bit for bit.
        store.kill_after_saves(2);
        let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&store)));
        assert!(killed.is_err(), "simulated kill fires");
        let resumed = run(&store);

        assert_eq!(
            serde_json::to_string(uninterrupted.analyzer()).unwrap(),
            serde_json::to_string(resumed.analyzer()).unwrap(),
            "resumed analyzer must be byte-identical"
        );
        let items = vec![fraud_item(77), normal_item(77), fraud_item(5)];
        let a = uninterrupted.detect(&items, &[50, 50, 50]);
        let b = resumed.detect(&items, &[50, 50, 50]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "scores must be bit-identical");
            assert_eq!(x.is_fraud, y.is_fraud);
        }
        // The store is fully drained after a successful run.
        assert!(store.load("w2v").is_none());
        assert!(store.load("analyzer").is_none());
        assert!(store.load("gbt").is_none());
    }
}
