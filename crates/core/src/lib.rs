//! # cats-core — the Cross-platform Anti-fraud System
//!
//! The paper's primary contribution: a third-party fraud-item detector
//! that consumes only public e-commerce data. Architecture (Fig 6):
//!
//! ```text
//!  data collector ─▶ semantic analyzer ─▶ feature extractor ─▶ detector
//!  (cats-collector)  (word2vec+sentiment)  (11 features)    (filter+classifier)
//! ```
//!
//! * [`semantic`] — the semantic analyzer: trains a word2vec model over a
//!   comment corpus, expands seed words into the positive/negative
//!   lexicon (Table I), and hosts the sentiment model.
//! * [`features`] — the feature extractor: the 11 platform-independent
//!   features of Table II, computed per item from its comments, with a
//!   parallel batch path ("implemented in a parallelized style for fast
//!   processing").
//! * [`detector`] — the two-stage detector: rule filter (sales volume and
//!   positive-evidence gates) followed by a pluggable binary classifier
//!   (GBT by default, per Table III).
//! * [`pipeline`] — end-to-end orchestration: train on a labeled corpus,
//!   detect over item streams, evaluate against ground truth (Table VI),
//!   and serialize/deserialize trained detectors.

pub mod detector;
pub mod features;
pub mod fusion;
pub mod pipeline;
pub mod report;
pub mod semantic;

pub use detector::{DetectionReport, Detector, DetectorConfig, FilterDecision};
pub use features::{FeatureReferenceSet, FeatureVector, ItemComments, FEATURE_NAMES, N_FEATURES};
pub use fusion::{
    fuse_scores, velocity_risk, StreamVerdict, VelocityFeatures, DEFAULT_FUSION_WEIGHT,
    N_VELOCITY_FEATURES, VELOCITY_FEATURE_NAMES,
};
pub use pipeline::{
    CatsPipeline, EvaluationSlices, PersistError, PipelineConfig, PipelineSnapshot,
    SNAPSHOT_FORMAT_VERSION,
};
pub use report::{DataHealth, DetectionSummary};
pub use semantic::{SemanticAnalyzer, SemanticConfig};
