//! The two-stage detector (paper §II-B).
//!
//! **Stage 1 — rule filter.** "It filters part of the items according to
//! some rules, e.g., filtering the e-commerce items, of which the sales
//! volumes are less than 5, and filtering the e-commerce items which
//! contain no positive n-grams or words." Filtered items are never
//! classified (they are reported as normal).
//!
//! **Stage 2 — binary classifier.** A pluggable
//! [`cats_ml::Classifier`] over the 11-feature rows; the default is the
//! gradient-boosted-tree model that won Table III.

use crate::features::{extract_batch, FeatureVector, ItemComments, N_FEATURES};
use crate::semantic::SemanticAnalyzer;
use cats_ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats_ml::{Classifier, Dataset};
use cats_par::Parallelism;
use serde::{Deserialize, Serialize};

/// Rule-filter and decision-threshold configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Items below this sales volume are filtered out (paper: 5).
    pub min_sales_volume: u64,
    /// Items whose comments contain no positive words and no positive
    /// 2-grams are filtered out.
    pub require_positive_evidence: bool,
    /// Classification threshold on the fraud score.
    pub threshold: f64,
    /// Parallelism for feature extraction during fit/detect (a runtime
    /// knob, not part of the serialized model).
    #[serde(skip)]
    pub parallelism: Parallelism,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            min_sales_volume: 5,
            require_positive_evidence: true,
            threshold: 0.5,
            parallelism: Parallelism::default(),
        }
    }
}

/// Why stage 1 kept or dropped an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FilterDecision {
    /// Passed both rules; scored by the classifier.
    Classified,
    /// Dropped: sales volume below the minimum.
    FilteredLowSales,
    /// Dropped: no positive words or positive 2-grams in any comment.
    FilteredNoPositiveEvidence,
    /// Dropped for data health, not by the paper's rules: the item has
    /// zero usable comments (e.g. a fully truncated crawl) or produced a
    /// non-finite feature row. Quarantined items are never scored.
    Quarantined,
}

/// Per-item detection outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Position of the item in the input batch.
    pub index: usize,
    /// Stage-1 outcome.
    pub filter: FilterDecision,
    /// Fraud score in \[0,1\]; 0 for filtered items.
    pub score: f64,
    /// Final verdict: reported as fraud?
    pub is_fraud: bool,
    /// The extracted features (present for classified items).
    pub features: Option<FeatureVector>,
}

/// Builds the training [`Dataset`] the stage-2 classifier fits on: the
/// finite feature rows of `rows`, with non-finite rows (degraded input
/// that slipped past upstream cleaning) dropped. This is exactly the
/// cleaning [`Detector::fit_features`] applies — exposed so callers that
/// fit a concrete classifier out-of-band (the resumable training path)
/// see the same data the detector would.
pub fn training_dataset(rows: &[FeatureVector], labels: &[u8]) -> Dataset {
    assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
    let mut data = Dataset::new(N_FEATURES);
    for (r, &l) in rows.iter().zip(labels) {
        if r.is_finite() {
            data.push(r.as_slice(), l);
        }
    }
    data
}

/// The CATS detector: rule filter + trained classifier.
pub struct Detector {
    config: DetectorConfig,
    classifier: Box<dyn Classifier>,
    fitted: bool,
}

impl Detector {
    /// A detector with the paper's default GBT classifier.
    pub fn with_default_classifier(config: DetectorConfig) -> Self {
        Self::new(config, Box::new(GradientBoostedTrees::new(GbtConfig::default())))
    }

    /// A detector with a custom stage-2 classifier.
    pub fn new(config: DetectorConfig, classifier: Box<dyn Classifier>) -> Self {
        Self { config, classifier, fitted: false }
    }

    /// The active configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Whether [`Detector::fit`] has run.
    pub fn is_fit(&self) -> bool {
        self.fitted
    }

    /// Stage-2 classifier name.
    pub fn classifier_name(&self) -> &'static str {
        self.classifier.name()
    }

    /// Marks the detector as fitted — for wiring in a classifier that was
    /// trained elsewhere (e.g. restored from a serialized snapshot).
    pub fn mark_fitted(&mut self) {
        self.fitted = true;
    }

    /// Adjusts the decision threshold — used to move the trained detector
    /// to a different operating point (e.g. one calibrated on a holdout,
    /// or the high-precision deployment point) without refitting.
    pub fn set_threshold(&mut self, threshold: f64) {
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        self.config.threshold = threshold;
    }

    /// Pins the feature-extraction thread count — used by sharded
    /// serving, where each shard process owns a slice of the machine and
    /// must not oversubscribe it with the auto-resolved pool width.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.config.parallelism = parallelism;
    }

    /// Applies the stage-1 rules to one item.
    pub fn filter_item(
        &self,
        sales_volume: u64,
        item: &ItemComments,
        analyzer: &SemanticAnalyzer,
    ) -> FilterDecision {
        if sales_volume < self.config.min_sales_volume {
            return FilterDecision::FilteredLowSales;
        }
        if self.config.require_positive_evidence {
            let lex = analyzer.lexicon();
            let has_evidence = item.tokens.iter().any(|toks| {
                lex.positive_count(toks) > 0
                    || cats_text::ngram::positive_bigram_count(toks, lex) > 0
            });
            if !has_evidence {
                return FilterDecision::FilteredNoPositiveEvidence;
            }
        }
        FilterDecision::Classified
    }

    /// Trains the stage-2 classifier on labeled feature rows. Non-finite
    /// rows (degraded input that slipped past upstream cleaning) are
    /// dropped rather than poisoning the model.
    ///
    /// # Panics
    /// Panics if no finite rows remain.
    pub fn fit_features(&mut self, rows: &[FeatureVector], labels: &[u8]) {
        let data = training_dataset(rows, labels);
        assert!(!data.is_empty(), "no finite training rows");
        self.classifier.fit(&data);
        self.fitted = true;
    }

    /// Trains from labeled items: extracts features (in parallel) then
    /// fits. Filtered-out items still participate in training — the paper
    /// pre-trains on a labeled dataset without re-filtering it.
    ///
    /// Accepts owned items or references, so callers holding borrowed
    /// training sets do not have to clone the comment vectors.
    pub fn fit<T>(&mut self, items: &[T], labels: &[u8], analyzer: &SemanticAnalyzer)
    where
        T: std::borrow::Borrow<ItemComments> + Sync,
    {
        let _span = cats_obs::span!("cats.core.fit", { items.len() });
        let rows = extract_batch(items, analyzer, self.config.parallelism.threads);
        self.fit_features(&rows, labels);
    }

    /// Runs both stages over a batch, producing one report per item.
    ///
    /// Accepts owned items or references (`&[ItemComments]` and
    /// `&[&ItemComments]` both work), mirroring [`Detector::fit`]: the
    /// serving layer coalesces borrowed per-request item lists into one
    /// batch without cloning comment vectors.
    ///
    /// # Panics
    /// Panics if the detector has not been fit, or if
    /// `sales_volumes.len() != items.len()`.
    pub fn detect<T>(
        &self,
        items: &[T],
        sales_volumes: &[u64],
        analyzer: &SemanticAnalyzer,
    ) -> Vec<DetectionReport>
    where
        T: std::borrow::Borrow<ItemComments> + Sync,
    {
        assert!(self.fitted, "detect before fit");
        assert_eq!(items.len(), sales_volumes.len(), "items/sales mismatch");
        let _span = cats_obs::span!("cats.core.detect", { items.len() });

        // Stage 0: data-health quarantine — an item with zero usable
        // comments (fully truncated or fully dropped crawl) carries no
        // text signal; scoring its synthetic zero-row would be noise.
        // Stage 1: the paper's rule filter.
        let filter_span = cats_obs::span!("cats.core.detect.filter", { items.len() });
        let decisions: Vec<FilterDecision> = items
            .iter()
            .zip(sales_volumes)
            .map(|(it, &sv)| {
                let it = it.borrow();
                if it.is_empty() {
                    FilterDecision::Quarantined
                } else {
                    self.filter_item(sv, it, analyzer)
                }
            })
            .collect();
        drop(filter_span);

        // Stage 2: features only for survivors.
        let survivors: Vec<usize> =
            (0..items.len()).filter(|&i| decisions[i] == FilterDecision::Classified).collect();
        let survivor_items: Vec<&ItemComments> =
            survivors.iter().map(|&i| items[i].borrow()).collect();
        let rows = extract_batch(&survivor_items, analyzer, self.config.parallelism.threads);

        let classify_span = cats_obs::span!("cats.core.detect.classify", { survivors.len() });
        let mut reports: Vec<DetectionReport> = decisions
            .iter()
            .enumerate()
            .map(|(index, &filter)| DetectionReport {
                index,
                filter,
                score: 0.0,
                is_fraud: false,
                features: None,
            })
            .collect();
        for (&i, row) in survivors.iter().zip(rows) {
            // Post-extraction quarantine: never feed a non-finite row to
            // the classifier or emit a NaN score.
            if !row.is_finite() {
                reports[i].filter = FilterDecision::Quarantined;
                continue;
            }
            let score = self.classifier.predict_proba(row.as_slice());
            reports[i].score = score;
            reports[i].is_fraud = score >= self.config.threshold;
            reports[i].features = Some(row);
        }
        drop(classify_span);
        reports
    }

    /// Scores feature rows straight through the stage-2 classifier's
    /// batch path (the GBT routes this to the branch-lite flat forest),
    /// one probability per row, bit-identical to per-row
    /// `predict_proba`. Non-finite rows score 0.0 — the streaming
    /// caller has no quarantine lane, and a zero score is the same
    /// "treat as normal" outcome [`Detector::detect`] reaches through
    /// [`FilterDecision::Quarantined`].
    ///
    /// # Panics
    /// Panics if the detector has not been fit.
    pub fn score_rows(&self, rows: &[FeatureVector]) -> Vec<f64> {
        assert!(self.fitted, "score before fit");
        let finite: Vec<usize> = (0..rows.len()).filter(|&i| rows[i].is_finite()).collect();
        let flat: Vec<f64> =
            finite.iter().flat_map(|&i| rows[i].as_slice().iter().copied()).collect();
        let mut scores = vec![0.0; rows.len()];
        if !finite.is_empty() {
            let cols = cats_ml::ColMatrix::from_row_major(&flat, N_FEATURES);
            for (&i, s) in finite.iter().zip(self.classifier.predict_proba_batch(&cols)) {
                scores[i] = s;
            }
        }
        scores
    }

    /// Stage-2 decision threshold currently in force.
    pub fn threshold(&self) -> f64 {
        self.config.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_sentiment::SentimentModel;
    use cats_text::Lexicon;

    fn analyzer() -> SemanticAnalyzer {
        let lex = Lexicon::new(["hao".to_string()], ["cha".to_string()]);
        let docs = |texts: &[&str]| -> Vec<Vec<String>> {
            texts.iter().map(|t| t.split_whitespace().map(String::from).collect()).collect()
        };
        let sent = SentimentModel::train(&docs(&["hao hao"]), &docs(&["cha cha"]));
        SemanticAnalyzer::from_parts(lex, sent)
    }

    /// Fraud-looking item: positive-saturated repetitive comments.
    fn fraud_item(i: usize) -> ItemComments {
        ItemComments::from_texts([
            format!("hao hao hao ! zhen hao w{i} ， hao hao x y z hao").as_str(),
            "hen hao hao ！ hao hao feichang hao hao hao",
        ])
    }

    /// Normal-looking item: short mixed comments.
    fn normal_item(i: usize) -> ItemComments {
        ItemComments::from_texts([format!("shu hao kan w{i}").as_str(), "dongxi cha le dian"])
    }

    fn trained_detector(a: &SemanticAnalyzer) -> Detector {
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            items.push(fraud_item(i));
            labels.push(1);
            items.push(normal_item(i));
            labels.push(0);
        }
        let mut det = Detector::with_default_classifier(DetectorConfig::default());
        det.fit(&items, &labels, a);
        det
    }

    #[test]
    fn filter_drops_low_sales() {
        let a = analyzer();
        let det = Detector::with_default_classifier(DetectorConfig::default());
        let item = fraud_item(0);
        assert_eq!(det.filter_item(4, &item, &a), FilterDecision::FilteredLowSales);
        assert_eq!(det.filter_item(5, &item, &a), FilterDecision::Classified);
    }

    #[test]
    fn filter_drops_items_without_positive_evidence() {
        let a = analyzer();
        let det = Detector::with_default_classifier(DetectorConfig::default());
        let bare = ItemComments::from_texts(["cha dongxi", "x y z"]);
        assert_eq!(det.filter_item(100, &bare, &a), FilterDecision::FilteredNoPositiveEvidence);
        let cfg = DetectorConfig { require_positive_evidence: false, ..DetectorConfig::default() };
        let det2 = Detector::with_default_classifier(cfg);
        assert_eq!(det2.filter_item(100, &bare, &a), FilterDecision::Classified);
    }

    #[test]
    fn detector_learns_to_separate() {
        let a = analyzer();
        let det = trained_detector(&a);
        let items = vec![fraud_item(99), normal_item(99)];
        let reports = det.detect(&items, &[50, 50], &a);
        assert!(reports[0].is_fraud, "score {}", reports[0].score);
        assert!(!reports[1].is_fraud, "score {}", reports[1].score);
        assert!(reports[0].features.is_some());
    }

    #[test]
    fn filtered_items_are_not_scored() {
        let a = analyzer();
        let det = trained_detector(&a);
        let items = vec![fraud_item(1)];
        let reports = det.detect(&items, &[2], &a);
        assert_eq!(reports[0].filter, FilterDecision::FilteredLowSales);
        assert!(!reports[0].is_fraud);
        assert_eq!(reports[0].score, 0.0);
        assert!(reports[0].features.is_none());
    }

    #[test]
    fn reports_preserve_input_order() {
        let a = analyzer();
        let det = trained_detector(&a);
        let items = vec![normal_item(1), fraud_item(2), normal_item(3)];
        let reports = det.detect(&items, &[50, 50, 50], &a);
        assert_eq!(reports.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert!(reports[1].is_fraud);
    }

    #[test]
    fn threshold_shifts_verdicts() {
        let a = analyzer();
        let mut permissive = Detector::with_default_classifier(DetectorConfig {
            threshold: 0.0,
            ..DetectorConfig::default()
        });
        let mut items = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            items.push(fraud_item(i));
            labels.push(1);
            items.push(normal_item(i));
            labels.push(0);
        }
        permissive.fit(&items, &labels, &a);
        let reports = permissive.detect(&[normal_item(7)], &[50], &a);
        assert!(reports[0].is_fraud, "threshold 0 reports everything classified");
    }

    #[test]
    #[should_panic(expected = "detect before fit")]
    fn detect_before_fit_panics() {
        let a = analyzer();
        let det = Detector::with_default_classifier(DetectorConfig::default());
        det.detect(&[fraud_item(0)], &[10], &a);
    }

    #[test]
    fn empty_items_are_quarantined_not_scored() {
        let a = analyzer();
        let det = trained_detector(&a);
        let items = vec![ItemComments::default(), fraud_item(3)];
        let reports = det.detect(&items, &[50, 50], &a);
        assert_eq!(reports[0].filter, FilterDecision::Quarantined);
        assert!(!reports[0].is_fraud);
        assert_eq!(reports[0].score, 0.0);
        assert!(reports[0].features.is_none());
        assert!(reports[1].is_fraud, "healthy items still classified");
    }

    #[test]
    fn non_finite_training_rows_are_dropped() {
        let mut det = Detector::with_default_classifier(DetectorConfig::default());
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let mut v = [0.0; N_FEATURES];
            v[0] = (i % 7) as f64;
            v[5] = i as f64;
            rows.push(FeatureVector(v));
            labels.push(u8::from(i % 7 >= 4));
        }
        rows.push(FeatureVector([f64::NAN; N_FEATURES]));
        labels.push(1);
        rows.push(FeatureVector([f64::INFINITY; N_FEATURES]));
        labels.push(0);
        det.fit_features(&rows, &labels);
        assert!(det.is_fit());
        // scoring a finite row stays finite
        let score = {
            let a = analyzer();
            let reports = det.detect(&[fraud_item(0)], &[50], &a);
            reports[0].score
        };
        assert!(score.is_finite());
    }

    #[test]
    #[should_panic(expected = "no finite training rows")]
    fn all_non_finite_training_rows_panic() {
        let mut det = Detector::with_default_classifier(DetectorConfig::default());
        det.fit_features(&[FeatureVector([f64::NAN; N_FEATURES])], &[1]);
    }

    #[test]
    fn feature_vector_finiteness_check() {
        assert!(FeatureVector([0.0; N_FEATURES]).is_finite());
        let mut v = [1.0; N_FEATURES];
        v[4] = f64::NAN;
        assert!(!FeatureVector(v).is_finite());
        v[4] = f64::NEG_INFINITY;
        assert!(!FeatureVector(v).is_finite());
    }

    #[test]
    fn custom_classifier_is_used() {
        use cats_ml::naive_bayes::GaussianNaiveBayes;
        let det = Detector::new(DetectorConfig::default(), Box::new(GaussianNaiveBayes::new()));
        assert_eq!(det.classifier_name(), "Naive Bayes");
    }
}
