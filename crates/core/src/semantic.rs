//! The semantic analyzer (paper §II-B).
//!
//! Responsible for "analyzing the semantic relationships within
//! e-commerce data": it trains a word2vec model on a large comment corpus,
//! uses it to expand seed words into the positive set *P* and negative set
//! *N* (Table I), and provides the sentiment model that scores every
//! comment. Feature extraction consumes the analyzer through
//! [`SemanticAnalyzer`]'s lexicon/sentiment accessors.

use cats_embedding::{expand_lexicon, Embedding, ExpansionConfig, Word2VecConfig, Word2VecTrainer};
use cats_par::Parallelism;
use cats_sentiment::SentimentModel;
use cats_text::{Corpus, Lexicon, Segmenter, WhitespaceSegmenter};
use serde::{Deserialize, Serialize};

/// Configuration of semantic-analyzer training.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemanticConfig {
    /// word2vec hyperparameters.
    pub word2vec: Word2VecConfig,
    /// Lexicon expansion parameters (the paper caps both sets at ~200).
    pub expansion: ExpansionConfig,
    /// Parallelism for corpus segmentation, embedding training and
    /// sentiment training. Overrides `word2vec.parallelism`.
    pub parallelism: Parallelism,
}

/// The trained semantic analyzer: expanded lexicon + sentiment model.
///
/// The word2vec embedding itself is training-time machinery; what the
/// feature extractor needs at run time is the lexicon it produced and the
/// sentiment scorer, which is also what gets serialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemanticAnalyzer {
    lexicon: Lexicon,
    sentiment: SentimentModel,
}

impl SemanticAnalyzer {
    /// Trains the full analyzer:
    ///
    /// 1. builds a [`Corpus`] from `comment_texts` (the paper uses ~70M
    ///    Taobao comments; any scale works),
    /// 2. trains word2vec on it,
    /// 3. expands `positive_seeds` / `negative_seeds` into the lexicon,
    /// 4. trains the sentiment model from `sentiment_positive` /
    ///    `sentiment_negative` labeled review texts.
    pub fn train(
        comment_texts: &[&str],
        positive_seeds: &[String],
        negative_seeds: &[String],
        sentiment_positive: &[&str],
        sentiment_negative: &[&str],
        config: SemanticConfig,
    ) -> Self {
        Self::train_impl(
            comment_texts,
            positive_seeds,
            negative_seeds,
            sentiment_positive,
            sentiment_negative,
            config,
            None,
        )
    }

    /// [`SemanticAnalyzer::train`] with crash recovery: the word2vec
    /// epochs — by far the dominant training cost — checkpoint into
    /// `store` under the `"w2v"` stage, so a rerun after a crash resumes
    /// from the last completed epoch. Checkpointed word2vec always runs
    /// the deterministic sharded schedule (see
    /// [`Word2VecTrainer::train_checkpointed`]); everything downstream of
    /// the embedding is deterministic, so an interrupted-and-resumed
    /// analyzer is bit-identical to an uninterrupted checkpointed one.
    pub fn train_checkpointed(
        comment_texts: &[&str],
        positive_seeds: &[String],
        negative_seeds: &[String],
        sentiment_positive: &[&str],
        sentiment_negative: &[&str],
        config: SemanticConfig,
        store: &cats_io::CheckpointStore,
    ) -> Self {
        Self::train_impl(
            comment_texts,
            positive_seeds,
            negative_seeds,
            sentiment_positive,
            sentiment_negative,
            config,
            Some(store),
        )
    }

    fn train_impl(
        comment_texts: &[&str],
        positive_seeds: &[String],
        negative_seeds: &[String],
        sentiment_positive: &[&str],
        sentiment_negative: &[&str],
        config: SemanticConfig,
        ckpt: Option<&cats_io::CheckpointStore>,
    ) -> Self {
        let _span = cats_obs::span!("cats.core.train");
        let seg = WhitespaceSegmenter;
        let par = config.parallelism;
        let mut corpus = Corpus::new();
        {
            let _seg_span = cats_obs::span!("cats.core.train.segment", { comment_texts.len() });
            corpus.push_texts(comment_texts, &seg, par);
        }
        let embedding = {
            let _embed_span = cats_obs::span!("cats.core.train.embed", { comment_texts.len() });
            let w2v = Word2VecConfig { parallelism: par, ..config.word2vec };
            let trainer = Word2VecTrainer::new(w2v);
            match ckpt {
                Some(store) => trainer.train_checkpointed(&corpus, store, "w2v"),
                None => trainer.train(&corpus),
            }
        };
        let lexicon = {
            let _expand_span = cats_obs::span!("cats.core.train.expand");
            expand_lexicon(&embedding, positive_seeds, negative_seeds, config.expansion)
        };

        let sentiment = {
            let _sent_span = cats_obs::span!("cats.core.train.sentiment", {
                sentiment_positive.len() + sentiment_negative.len()
            });
            let seg_docs = |texts: &[&str]| -> Vec<Vec<String>> {
                cats_par::map_chunked(par, texts, |t| seg.segment(t))
            };
            SentimentModel::train_par(
                &seg_docs(sentiment_positive),
                &seg_docs(sentiment_negative),
                par,
            )
        };
        Self { lexicon, sentiment }
    }

    /// Trains word2vec and returns the raw embedding too — used by
    /// experiments that inspect neighbourhoods (Table I).
    pub fn train_embedding(comment_texts: &[&str], config: Word2VecConfig) -> Embedding {
        let seg = WhitespaceSegmenter;
        let mut corpus = Corpus::new();
        corpus.push_texts(comment_texts, &seg, config.parallelism);
        Word2VecTrainer::new(config).train(&corpus)
    }

    /// Builds an analyzer from already-trained parts (e.g. deserialized).
    pub fn from_parts(lexicon: Lexicon, sentiment: SentimentModel) -> Self {
        Self { lexicon, sentiment }
    }

    /// The expanded positive/negative lexicon.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The sentiment scorer.
    pub fn sentiment(&self) -> &SentimentModel {
        &self.sentiment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature platform-like corpus: promo comments share positive
    /// words, complaints share negative words.
    fn corpus() -> Vec<String> {
        let mut texts = Vec::new();
        for i in 0..400 {
            let v = i % 4;
            texts.push(format!("item great{v} superb{v} lovely{v} fast ship great{v}",));
            texts.push(format!("broken bad{v} awful{v} refund bad{v} slow"));
            texts.push("box arrived parcel store normal day".to_string());
        }
        texts
    }

    fn analyzer() -> SemanticAnalyzer {
        let texts = corpus();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let pos_docs = ["great0 superb0 lovely0", "great1 lovely1 superb2"];
        let neg_docs = ["bad0 awful0 refund", "awful1 bad2 broken"];
        SemanticAnalyzer::train(
            &refs,
            &["great0".to_string()],
            &["bad0".to_string()],
            &pos_docs,
            &neg_docs,
            SemanticConfig {
                word2vec: Word2VecConfig {
                    dim: 16,
                    epochs: 4,
                    min_count: 2,
                    subsample: 0.0,
                    ..Word2VecConfig::default()
                },
                expansion: ExpansionConfig { k: 6, min_similarity: 0.3, max_words: 12 },
                ..SemanticConfig::default()
            },
        )
    }

    #[test]
    fn training_expands_seed_words() {
        let a = analyzer();
        assert!(a.lexicon().is_positive("great0"), "seed kept");
        assert!(a.lexicon().is_negative("bad0"), "seed kept");
        assert!(a.lexicon().positive_len() > 1, "expansion found neighbours");
    }

    #[test]
    fn expanded_sets_are_disjoint() {
        let a = analyzer();
        for w in a.lexicon().negative_words() {
            assert!(!a.lexicon().is_positive(w));
        }
    }

    #[test]
    fn sentiment_scores_follow_training_polarity() {
        let a = analyzer();
        let seg = WhitespaceSegmenter;
        let pos = a.sentiment().score_text("great0 lovely1", &seg);
        let neg = a.sentiment().score_text("bad0 awful1", &seg);
        assert!(pos > 0.6, "{pos}");
        assert!(neg < 0.4, "{neg}");
    }

    #[test]
    fn from_parts_roundtrip_via_serde() {
        let a = analyzer();
        let json = serde_json::to_string(&a).unwrap();
        let b: SemanticAnalyzer = serde_json::from_str(&json).unwrap();
        assert_eq!(b.lexicon().positive_len(), a.lexicon().positive_len());
        let seg = WhitespaceSegmenter;
        assert_eq!(
            a.sentiment().score_text("great0", &seg),
            b.sentiment().score_text("great0", &seg)
        );
    }
}
