//! Property-based tests for the CATS core: feature extraction invariants,
//! threshold calibration, and the noisy-OR fusion contract.

use cats_core::pipeline::{calibrate_balanced_threshold, calibrate_precision_threshold};
use cats_core::{
    features, fuse_scores, velocity_risk, DetectionReport, FilterDecision, ItemComments,
    SemanticAnalyzer, VelocityFeatures, DEFAULT_FUSION_WEIGHT, N_VELOCITY_FEATURES,
};
use cats_sentiment::SentimentModel;
use cats_text::Lexicon;
use proptest::prelude::*;

fn analyzer() -> SemanticAnalyzer {
    let lex = Lexicon::new(["hao".to_string(), "zan".to_string()], ["cha".to_string()]);
    let docs = |texts: &[&str]| -> Vec<Vec<String>> {
        texts.iter().map(|t| t.split_whitespace().map(String::from).collect()).collect()
    };
    let sent = SentimentModel::train(&docs(&["hao zan hao"]), &docs(&["cha cha"]));
    SemanticAnalyzer::from_parts(lex, sent)
}

fn comment_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            Just("hao".to_string()),
            Just("zan".to_string()),
            Just("cha".to_string()),
            Just("!".to_string()),
            "[a-z]{1,6}",
        ],
        0..25,
    )
    .prop_map(|toks| toks.join(" "))
}

fn item() -> impl Strategy<Value = ItemComments> {
    prop::collection::vec(comment_text(), 0..8)
        .prop_map(|texts| ItemComments::from_texts(texts.iter().map(String::as_str)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn features_always_finite_and_in_natural_ranges(it in item()) {
        let a = analyzer();
        let v = features::extract(&it, &a);
        for (&x, name) in v.as_slice().iter().zip(features::FEATURE_NAMES) {
            prop_assert!(x.is_finite(), "{name} not finite");
            prop_assert!(x >= 0.0, "{name} negative: {x}");
        }
        // ratio features bounded by 1
        for name in ["uniqueWordRatio", "averageSentiment", "averagePunctuationRatio", "averageNgramRatio"] {
            let x = v.get(name).unwrap();
            prop_assert!(x <= 1.0 + 1e-12, "{name} = {x}");
        }
        // sums dominate averages
        prop_assert!(v.get("sumCommentLength").unwrap() >= v.get("averageCommentLength").unwrap() - 1e-9);
    }

    #[test]
    fn batch_extraction_equals_sequential(items in prop::collection::vec(item(), 0..12), threads in 1usize..5) {
        let a = analyzer();
        let seq: Vec<_> = items.iter().map(|it| features::extract(it, &a)).collect();
        let par = features::extract_batch(&items, &a, threads);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn calibration_thresholds_are_valid_scores(
        scores in prop::collection::vec(0.0f64..1.0, 2..40),
        labels in prop::collection::vec(0u8..2, 2..40),
    ) {
        let n = scores.len().min(labels.len());
        let reports: Vec<DetectionReport> = scores[..n]
            .iter()
            .enumerate()
            .map(|(index, &score)| DetectionReport {
                index,
                filter: FilterDecision::Classified,
                score,
                is_fraud: score >= 0.5,
                features: Some(cats_core::FeatureVector([0.0; cats_core::N_FEATURES])),
            })
            .collect();
        let labels = &labels[..n];
        let t1 = calibrate_balanced_threshold(&reports, labels);
        let t2 = calibrate_precision_threshold(&reports, labels, 0.9);
        for t in [t1, t2] {
            prop_assert!((0.0..=1.0).contains(&t), "threshold {t}");
        }
    }

    #[test]
    fn precision_calibration_meets_target_when_feasible(
        n_pos in 3usize..20,
        n_neg in 3usize..20,
    ) {
        // Perfectly separable scores: positives ≥ 0.8, negatives ≤ 0.3.
        let mut reports = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_pos {
            reports.push(DetectionReport {
                index: i,
                filter: FilterDecision::Classified,
                score: 0.8 + 0.01 * (i as f64 % 10.0),
                is_fraud: true,
                features: Some(cats_core::FeatureVector([0.0; cats_core::N_FEATURES])),
            });
            labels.push(1u8);
        }
        for i in 0..n_neg {
            reports.push(DetectionReport {
                index: n_pos + i,
                filter: FilterDecision::Classified,
                score: 0.3 - 0.01 * (i as f64 % 10.0),
                is_fraud: false,
                features: Some(cats_core::FeatureVector([0.0; cats_core::N_FEATURES])),
            });
            labels.push(0u8);
        }
        let t = calibrate_precision_threshold(&reports, &labels, 1.0);
        // Applying t must reach the target on this holdout.
        let preds: Vec<bool> = reports.iter().map(|r| r.score >= t).collect();
        let m = cats_ml::metrics::BinaryMetrics::compute(&labels, &preds);
        prop_assert!((m.precision - 1.0).abs() < 1e-12);
        prop_assert!((m.recall - 1.0).abs() < 1e-12, "separable data allows full recall");
    }

    #[test]
    fn fusion_is_bounded_and_anchored(
        content in 0.0f64..1.0,
        risk in 0.0f64..1.0,
        weight in 0.0f64..1.0,
    ) {
        let fused = fuse_scores(content, risk, weight);
        prop_assert!((0.0..=1.0).contains(&fused), "fused {fused} out of [0,1]");
        // Noisy-OR anchors: fusion never lowers the content score, and a
        // certain content verdict stays certain whatever the velocity says.
        prop_assert!(fused >= content - 1e-12, "fusion weakened content: {fused} < {content}");
        prop_assert!((fuse_scores(1.0, risk, weight) - 1.0).abs() < 1e-12);
        // Zero-risk (or zero-weight) fusion is the identity on content.
        prop_assert!((fuse_scores(content, 0.0, weight) - content).abs() < 1e-12);
        prop_assert!((fuse_scores(content, risk, 0.0) - content).abs() < 1e-12);
    }

    #[test]
    fn fusion_is_monotone_in_both_inputs(
        content_lo in 0.0f64..1.0,
        content_hi in 0.0f64..1.0,
        risk_lo in 0.0f64..1.0,
        risk_hi in 0.0f64..1.0,
        weight in 0.0f64..1.0,
    ) {
        let (c0, c1) = if content_lo <= content_hi { (content_lo, content_hi) } else { (content_hi, content_lo) };
        let (r0, r1) = if risk_lo <= risk_hi { (risk_lo, risk_hi) } else { (risk_hi, risk_lo) };
        prop_assert!(
            fuse_scores(c0, r0, weight) <= fuse_scores(c1, r0, weight) + 1e-12,
            "fusion must be monotone in the content score"
        );
        prop_assert!(
            fuse_scores(c0, r0, weight) <= fuse_scores(c0, r1, weight) + 1e-12,
            "fusion must be monotone in the velocity risk"
        );
    }

    #[test]
    fn velocity_risk_alone_never_crosses_the_default_threshold(
        raw in prop::collection::vec(0.0f64..1e6, N_VELOCITY_FEATURES),
    ) {
        // The w = 0.5 safety contract (DESIGN.md §13): with zero content
        // evidence, fused = w · risk ≤ 0.5 < the 0.5-exclusive default
        // threshold — velocity bursts alone (a flash sale, a viral item)
        // can never be reported as fraud.
        let mut arr = [0.0f64; N_VELOCITY_FEATURES];
        arr.copy_from_slice(&raw);
        let v = VelocityFeatures(arr);
        let risk = velocity_risk(&v);
        prop_assert!((0.0..=1.0).contains(&risk), "velocity risk {risk} out of [0,1]");
        let fused = fuse_scores(0.0, risk, DEFAULT_FUSION_WEIGHT);
        prop_assert!(fused <= DEFAULT_FUSION_WEIGHT + 1e-12, "velocity-only fused {fused}");
        prop_assert!(fused < 0.5 + 1e-12, "velocity alone must not cross the fraud threshold");
    }
}
