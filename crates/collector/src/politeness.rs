//! Politeness accounting.
//!
//! The paper stresses that "our data collector was designed to minimize
//! server impact" (§VII) and that the E-platform crawl ran for about one
//! week on three servers. This module models the request budget of such
//! a crawl *deterministically*: given a pacing policy (requests per
//! second per worker, worker count), it converts a crawl's page counts
//! into the wall-clock duration that crawl would take, and checks a
//! per-host rate ceiling. The simulated site needs no real waiting, so
//! the accounting is pure arithmetic — and testable.

use crate::crawler::CrawlStats;

/// A crawl pacing policy.
#[derive(Debug, Clone, Copy)]
pub struct PolitenessPolicy {
    /// Maximum request rate per worker, in requests per second.
    pub requests_per_second: f64,
    /// Number of crawl workers (the paper deployed three servers).
    pub workers: usize,
    /// Hard ceiling on the aggregate request rate against the host.
    pub max_host_rps: f64,
}

impl Default for PolitenessPolicy {
    fn default() -> Self {
        Self { requests_per_second: 2.0, workers: 3, max_host_rps: 10.0 }
    }
}

/// The deterministic accounting of one crawl under a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrawlBudget {
    /// Total page requests issued (successes + errors, incl. retries).
    pub total_requests: u64,
    /// Effective aggregate request rate (rps), after the host ceiling.
    pub effective_rps: f64,
    /// Estimated crawl duration in seconds.
    pub duration_secs: f64,
}

impl PolitenessPolicy {
    /// Whether the policy respects the host ceiling without clamping.
    pub fn within_host_ceiling(&self) -> bool {
        self.requests_per_second * self.workers as f64 <= self.max_host_rps
    }

    /// Accounts a finished crawl: every page response — success,
    /// transient error, rate-limit, or outage error — consumed one
    /// request, and every simulated wait (backoff, retry-after, breaker
    /// cooldown, stall) extends the duration on top of request pacing.
    ///
    /// # Panics
    /// Panics on a non-positive rate or zero workers.
    pub fn account(&self, stats: &CrawlStats) -> CrawlBudget {
        let _span = cats_obs::span!("cats.collector.politeness.account");
        assert!(self.requests_per_second > 0.0, "rate must be positive");
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.max_host_rps > 0.0, "host ceiling must be positive");
        let total_requests =
            stats.pages_fetched + stats.transient_errors + stats.rate_limited + stats.outage_errors;
        let raw_rps = self.requests_per_second * self.workers as f64;
        let effective_rps = raw_rps.min(self.max_host_rps);
        let budget = CrawlBudget {
            total_requests,
            effective_rps,
            duration_secs: total_requests as f64 / effective_rps + stats.sim_clock_secs as f64,
        };
        cats_obs::counter("cats.collector.politeness.requests_accounted").add(total_requests);
        cats_obs::gauge("cats.collector.politeness.effective_rps").set(effective_rps);
        cats_obs::gauge("cats.collector.politeness.duration_secs").set(budget.duration_secs);
        budget
    }
}

/// Formats a duration in seconds as `Xd Yh Zm` for crawl reports.
pub fn human_duration(secs: f64) -> String {
    let total_minutes = (secs / 60.0).round() as u64;
    let days = total_minutes / (24 * 60);
    let hours = (total_minutes / 60) % 24;
    let minutes = total_minutes % 60;
    format!("{days}d {hours}h {minutes}m")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pages: u64, errors: u64) -> CrawlStats {
        CrawlStats { pages_fetched: pages, transient_errors: errors, ..CrawlStats::default() }
    }

    #[test]
    fn accounts_requests_and_duration() {
        let policy = PolitenessPolicy { requests_per_second: 2.0, workers: 3, max_host_rps: 10.0 };
        let b = policy.account(&stats(6_000, 0));
        assert_eq!(b.total_requests, 6_000);
        assert!((b.effective_rps - 6.0).abs() < 1e-12);
        assert!((b.duration_secs - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn retries_count_as_requests() {
        let policy = PolitenessPolicy::default();
        let a = policy.account(&stats(100, 0));
        let b = policy.account(&stats(100, 50));
        assert_eq!(b.total_requests - a.total_requests, 50);
        assert!(b.duration_secs > a.duration_secs);
    }

    #[test]
    fn host_ceiling_clamps_aggregate_rate() {
        let policy = PolitenessPolicy { requests_per_second: 10.0, workers: 5, max_host_rps: 8.0 };
        assert!(!policy.within_host_ceiling());
        let b = policy.account(&stats(80, 0));
        assert!((b.effective_rps - 8.0).abs() < 1e-12);
        assert!((b.duration_secs - 10.0).abs() < 1e-9);
    }

    #[test]
    fn polite_policy_passes_ceiling_check() {
        assert!(PolitenessPolicy::default().within_host_ceiling());
    }

    #[test]
    fn human_duration_formats() {
        assert_eq!(human_duration(0.0), "0d 0h 0m");
        assert_eq!(human_duration(90.0), "0d 0h 2m"); // rounds
        assert_eq!(human_duration(3_600.0), "0d 1h 0m");
        assert_eq!(human_duration(26.5 * 3_600.0), "1d 2h 30m");
    }

    #[test]
    fn all_error_kinds_count_as_requests() {
        let policy = PolitenessPolicy::default();
        let s = CrawlStats {
            pages_fetched: 100,
            transient_errors: 10,
            rate_limited: 5,
            outage_errors: 3,
            ..CrawlStats::default()
        };
        assert_eq!(policy.account(&s).total_requests, 118);
    }

    #[test]
    fn backoff_waits_extend_the_deterministic_duration() {
        let policy = PolitenessPolicy { requests_per_second: 2.0, workers: 3, max_host_rps: 10.0 };
        let quiet = stats(600, 0);
        let waited = CrawlStats {
            backoff_waits: 4,
            backoff_wait_secs: 90,
            breaker_wait_secs: 60,
            stall_secs: 20,
            sim_clock_secs: 170,
            ..quiet
        };
        let a = policy.account(&quiet);
        let b = policy.account(&waited);
        assert_eq!(a.total_requests, b.total_requests, "waits are not requests");
        assert!((b.duration_secs - a.duration_secs - 170.0).abs() < 1e-9);
    }

    #[test]
    fn crawl_budget_respects_host_ceiling() {
        // A crawl under the default polite policy must never be accounted
        // faster than the host ceiling allows.
        let policy = PolitenessPolicy::default();
        assert!(policy.within_host_ceiling());
        let b = policy.account(&stats(12_345, 678));
        assert!(b.effective_rps <= policy.max_host_rps);
        assert!(b.duration_secs >= b.total_requests as f64 / policy.max_host_rps);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        PolitenessPolicy { requests_per_second: 0.0, ..PolitenessPolicy::default() }
            .account(&stats(1, 0));
    }

    #[test]
    fn paper_scale_sanity() {
        // The paper's crawl: one week, 3 servers, ~4.5M items. At ~22
        // comments/item and 20 records/page that's roughly 4.5M item pages
        // + ~9.9M comment pages ≈ 14.4M requests.
        let policy = PolitenessPolicy { requests_per_second: 8.0, workers: 3, max_host_rps: 24.0 };
        let b = policy.account(&stats(14_400_000, 0));
        let days = b.duration_secs / 86_400.0;
        assert!((5.0..9.0).contains(&days), "≈one week, got {days:.1} days");
    }
}
