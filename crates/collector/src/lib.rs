//! # cats-collector — the data collector
//!
//! CATS' first component "collects data from the public domain of
//! e-commerce platforms" (§II-B); the paper's instance is a Scrapy crawler
//! that walks shop homepages → item listings → paginated comment pages,
//! filtering noisy records (§IV-A). The real E-platform website is
//! unavailable, so this crate pairs:
//!
//! * [`site`] — a simulated public website over a `cats_platform::Platform`
//!   serving paginated JSON responses, with configurable realistic noise
//!   (duplicated records, malformed JSON, transient server errors);
//! * [`crawler`] — the collector itself: pagination, bounded retries,
//!   duplicate filtering, malformed-record skipping, and crawl accounting;
//! * [`politeness`] — deterministic request-budget accounting (the
//!   paper's crawl ran ~one week across three servers "designed to
//!   minimize server impact").
//!
//! The output type [`records::CollectedItem`] is the exact public view a
//! third party gets: no labels, no hired flags — only ids, text, and the
//! public metadata of the paper's Listing 2 (nickname, userExpValue,
//! client, date).

pub mod crawler;
pub mod politeness;
pub mod records;
pub mod resume;
pub mod site;

pub use crawler::{BackoffPolicy, BreakerPolicy, Collector, CollectorConfig, CrawlStats};
pub use politeness::{CrawlBudget, PolitenessPolicy};
pub use records::{CollectedComment, CollectedDataset, CollectedItem, CommentRecord};
pub use resume::{CrawlCheckpoint, ResumableCrawl};
pub use site::{FaultPlan, FetchError, Page, PublicSite, SiteConfig};
