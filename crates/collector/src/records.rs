//! Record types on the public wire and in the collected dataset.
//!
//! [`CommentRecord`] mirrors the JSON comment record of the paper's
//! Listing 2: item id, comment id, content, anonymized nickname,
//! userExpValue, client information, and date. The collector aggregates
//! records into per-item bundles ([`CollectedItem`]) that feed the CATS
//! feature extractor.

use serde::{Deserialize, Serialize};

/// One comment record as served by the public site (paper Listing 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommentRecord {
    /// Item the comment belongs to.
    pub item_id: u64,
    /// Platform-wide comment id.
    pub comment_id: u64,
    /// The comment text.
    pub comment_content: String,
    /// Anonymized buyer nickname (e.g. `0***li`).
    pub nickname: String,
    /// The buyer's public reliability score.
    #[serde(rename = "userExpValue")]
    pub user_exp_value: u64,
    /// Order client ("Web" / "Android" / "iPhone" / "Wechat").
    pub client_information: String,
    /// Order timestamp.
    pub date: String,
}

/// A shop record from a shop homepage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShopRecord {
    /// Shop id.
    pub shop_id: u32,
    /// Shop display name.
    pub shop_name: String,
    /// Shop homepage URL.
    pub shop_url: String,
}

/// An item record from a shop's listing page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemRecord {
    /// Item id.
    pub item_id: u64,
    /// Owning shop id.
    pub shop_id: u32,
    /// Item display name.
    pub item_name: String,
    /// Price in cents.
    pub price_cents: u64,
    /// Public sales volume.
    pub sales_volume: u64,
}

/// A collected comment (wire record minus the item id).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectedComment {
    /// Platform-wide comment id.
    pub comment_id: u64,
    /// Comment text.
    pub content: String,
    /// Anonymized buyer nickname.
    pub nickname: String,
    /// Buyer reliability score.
    pub user_exp_value: u64,
    /// Order client.
    pub client: String,
    /// Order timestamp.
    pub date: String,
}

/// An item with everything the crawl found about it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectedItem {
    /// Item id.
    pub item_id: u64,
    /// Owning shop id.
    pub shop_id: u32,
    /// Item display name.
    pub name: String,
    /// Price in cents.
    pub price_cents: u64,
    /// Public sales volume.
    pub sales_volume: u64,
    /// All comments found, in crawl order, deduplicated by comment id.
    pub comments: Vec<CollectedComment>,
    /// Whether the comment walk ended early (abandoned page or circuit
    /// breaker give-up): some of this item's comments were never fetched.
    #[serde(default)]
    pub truncated: bool,
}

impl CollectedItem {
    /// Borrowed comment texts — the CATS feature-extractor input shape.
    pub fn comment_texts(&self) -> Vec<&str> {
        self.comments.iter().map(|c| c.content.as_str()).collect()
    }
}

/// The full output of one crawl.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectedDataset {
    /// All shops discovered.
    pub shops: Vec<ShopRecord>,
    /// All items with their comments, in discovery order.
    pub items: Vec<CollectedItem>,
    /// Whether the catalogue itself is incomplete: the shop walk or an
    /// item-listing walk was truncated, so whole items may be missing.
    #[serde(default)]
    pub catalogue_truncated: bool,
}

impl CollectedDataset {
    /// Total comment count across items.
    pub fn comment_count(&self) -> usize {
        self.items.iter().map(|i| i.comments.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_record_json_shape_matches_listing2() {
        let r = CommentRecord {
            item_id: 545470505476,
            comment_id: 40805023517,
            comment_content: "zhege shangpin henhao".into(),
            nickname: "0***li".into(),
            user_exp_value: 100,
            client_information: "Android".into(),
            date: "2017-09-10 12:10:00".into(),
        };
        let json = serde_json::to_string(&r).unwrap();
        // the paper's field name is userExpValue
        assert!(json.contains("\"userExpValue\":100"), "{json}");
        let back: CommentRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        let r: Result<CommentRecord, _> = serde_json::from_str("{\"item_id\": 3");
        assert!(r.is_err());
    }

    #[test]
    fn collected_item_texts() {
        let it = CollectedItem {
            item_id: 1,
            shop_id: 2,
            name: "n".into(),
            price_cents: 3,
            sales_volume: 4,
            comments: vec![CollectedComment {
                comment_id: 9,
                content: "hao".into(),
                nickname: "a***b".into(),
                user_exp_value: 100,
                client: "Web".into(),
                date: "2017-09-01 00:00:00".into(),
            }],
            truncated: false,
        };
        assert_eq!(it.comment_texts(), vec!["hao"]);
    }

    #[test]
    fn dataset_comment_count_sums() {
        let mut d = CollectedDataset::default();
        assert_eq!(d.comment_count(), 0);
        d.items.push(CollectedItem {
            item_id: 0,
            shop_id: 0,
            name: String::new(),
            price_cents: 0,
            sales_volume: 0,
            comments: vec![],
            truncated: false,
        });
        assert_eq!(d.comment_count(), 0);
    }

    #[test]
    fn truncation_fields_default_when_absent_from_json() {
        // Pre-resilience serialized datasets lack the completeness flags.
        let json = r#"{"shops":[],"items":[{"item_id":1,"shop_id":2,"name":"n",
            "price_cents":3,"sales_volume":4,"comments":[]}]}"#;
        let d: CollectedDataset = serde_json::from_str(json).unwrap();
        assert!(!d.catalogue_truncated);
        assert!(!d.items[0].truncated);
    }
}
