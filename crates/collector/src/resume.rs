//! Resumable crawling.
//!
//! A week-long crawl (the paper's E-platform collection ran 2017-12-24 to
//! 2017-12-31) will be interrupted — servers restart, budgets pause. This
//! module adds a serializable [`CrawlCheckpoint`] tracking which items
//! have already been fully collected, so a re-run skips their comment
//! pages entirely and only fetches what is new.

use std::collections::HashSet;

use crate::crawler::{Collector, CollectorConfig};
use crate::records::CollectedDataset;
use crate::site::PublicSite;
use serde::{Deserialize, Serialize};

/// Persistent state of a partially completed crawl.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrawlCheckpoint {
    /// Items whose comment pages were fully walked.
    pub completed_items: HashSet<u64>,
    /// The data accumulated so far.
    pub dataset: CollectedDataset,
}

impl CrawlCheckpoint {
    /// An empty checkpoint (a fresh crawl).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `item_id` is already fully collected.
    pub fn is_complete(&self, item_id: u64) -> bool {
        self.completed_items.contains(&item_id)
    }

    /// Serializes the checkpoint to JSON (the on-disk format).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Restores a checkpoint from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// A resumable crawl session: wraps [`Collector`] with checkpoint logic.
pub struct ResumableCrawl {
    config: CollectorConfig,
    checkpoint: CrawlCheckpoint,
}

impl ResumableCrawl {
    /// Starts a fresh session.
    pub fn new(config: CollectorConfig) -> Self {
        Self { config, checkpoint: CrawlCheckpoint::new() }
    }

    /// Resumes from a previous checkpoint.
    pub fn resume(config: CollectorConfig, checkpoint: CrawlCheckpoint) -> Self {
        Self { config, checkpoint }
    }

    /// The current checkpoint (for persistence between runs).
    pub fn checkpoint(&self) -> &CrawlCheckpoint {
        &self.checkpoint
    }

    /// Crawls up to `max_new_items` items that are not yet complete,
    /// merging them into the checkpoint. Returns how many new items were
    /// collected. A bound of 0 means "no limit this run".
    pub fn crawl_increment(&mut self, site: &PublicSite<'_>, max_new_items: usize) -> usize {
        // Full catalogue walk (shop/item pages are cheap relative to
        // comment pages); comment collection is skipped for completed
        // items by filtering afterwards. To bound the *new* work, cap the
        // collector's item budget at completed + max_new.
        let cap = if max_new_items == 0 {
            0
        } else {
            self.checkpoint.completed_items.len() + max_new_items
        };
        let mut collector = Collector::new(CollectorConfig { max_items: cap, ..self.config });
        let fresh = collector.crawl(site);

        let mut added = 0usize;
        for item in fresh.items {
            if self.checkpoint.is_complete(item.item_id) {
                continue;
            }
            if max_new_items > 0 && added >= max_new_items {
                break;
            }
            // A truncated comment walk is not completion: leave the item
            // eligible for re-collection on the next increment, keeping
            // whatever was fetched so far as the best copy to date.
            if !item.truncated {
                self.checkpoint.completed_items.insert(item.item_id);
            }
            let slot = self
                .checkpoint
                .dataset
                .items
                .iter_mut()
                .find(|existing| existing.item_id == item.item_id);
            match slot {
                Some(existing) => *existing = item,
                None => self.checkpoint.dataset.items.push(item),
            }
            added += 1;
        }
        // Shops are idempotent: keep the latest walk's list.
        if !fresh.shops.is_empty() {
            self.checkpoint.dataset.shops = fresh.shops;
        }
        added
    }

    /// Finishes the session, yielding the accumulated dataset.
    pub fn into_dataset(self) -> CollectedDataset {
        self.checkpoint.dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteConfig;
    use cats_platform::{Platform, PlatformConfig};

    fn platform() -> Platform {
        Platform::generate(PlatformConfig {
            seed: 404,
            n_shops: 3,
            n_fraud_items: 5,
            n_normal_items: 20,
            users: cats_platform::campaign::UserPopulationConfig {
                n_users: 400,
                hired_fraction: 0.05,
            },
            ..PlatformConfig::default()
        })
    }

    fn clean_site(p: &Platform) -> PublicSite<'_> {
        PublicSite::new(
            p,
            SiteConfig {
                duplicate_prob: 0.0,
                malformed_prob: 0.0,
                error_prob: 0.0,
                seed: 5,
                ..SiteConfig::default()
            },
        )
    }

    #[test]
    fn incremental_crawl_accumulates_without_duplicates() {
        let p = platform();
        let site = clean_site(&p);
        let mut session = ResumableCrawl::new(CollectorConfig::default());
        let first = session.crawl_increment(&site, 10);
        assert_eq!(first, 10);
        let second = session.crawl_increment(&site, 10);
        assert_eq!(second, 10);
        let third = session.crawl_increment(&site, 0); // finish
        assert_eq!(third, 5);
        let data = session.into_dataset();
        assert_eq!(data.items.len(), 25);
        // no duplicated items
        let mut ids: Vec<u64> = data.items.iter().map(|i| i.item_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 25);
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let p = platform();
        let site = clean_site(&p);
        let mut session = ResumableCrawl::new(CollectorConfig::default());
        session.crawl_increment(&site, 7);
        let json = session.checkpoint().to_json().unwrap();

        // "restart": rebuild the session from the serialized checkpoint
        let restored = CrawlCheckpoint::from_json(&json).unwrap();
        assert_eq!(restored.completed_items.len(), 7);
        let mut resumed = ResumableCrawl::resume(CollectorConfig::default(), restored);
        let added = resumed.crawl_increment(&site, 0);
        assert_eq!(added, 18);
        assert_eq!(resumed.into_dataset().items.len(), 25);
    }

    #[test]
    fn completed_items_are_not_recollected() {
        let p = platform();
        let site = clean_site(&p);
        let mut session = ResumableCrawl::new(CollectorConfig::default());
        session.crawl_increment(&site, 0);
        let total = session.checkpoint().dataset.items.len();
        let again = session.crawl_increment(&site, 0);
        assert_eq!(again, 0, "everything already complete");
        assert_eq!(session.into_dataset().items.len(), total);
    }

    #[test]
    fn fresh_checkpoint_is_empty() {
        let c = CrawlCheckpoint::new();
        assert!(c.completed_items.is_empty());
        assert!(!c.is_complete(0));
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(CrawlCheckpoint::from_json("{broken").is_err());
    }

    #[test]
    fn truncated_items_are_recollected_on_resume() {
        use crate::site::FaultPlan;
        let p = platform();
        // outage_len 10 > the breaker's patience (4 failures + 3 probes):
        // affected resources are given up on the first pass, but their
        // windows are exhausted enough that a second pass rides them out.
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan {
                    outage_resource_prob: 0.4,
                    outage_len: 10,
                    ..FaultPlan::none()
                },
                duplicate_prob: 0.0,
                malformed_prob: 0.0,
                error_prob: 0.0,
                seed: 21,
                ..SiteConfig::default()
            },
        );
        let mut session = ResumableCrawl::new(CollectorConfig::default());
        // A give-up consumes 7 of the 10 outage requests, so the next walk
        // of that resource always rides out the remainder; each catalogue
        // level (shops → listings → comments) may absorb one pass, so a
        // handful of increments is guaranteed to converge.
        for _ in 0..6 {
            session.crawl_increment(&site, 0);
        }
        let data = session.into_dataset();
        assert_eq!(data.items.len(), p.items().len());
        assert!(data.items.iter().all(|i| !i.truncated), "later passes complete the walk");
        // no duplicated item entries from the re-collection
        let mut ids: Vec<u64> = data.items.iter().map(|i| i.item_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), data.items.len());
    }

    #[test]
    fn corrupted_checkpoint_recovers_by_restarting() {
        let p = platform();
        let site = clean_site(&p);
        let mut session = ResumableCrawl::new(CollectorConfig::default());
        session.crawl_increment(&site, 7);
        let json = session.checkpoint().to_json().unwrap();

        // Simulate a checkpoint file truncated mid-write (crash during
        // persistence): loading fails, and the recovery path is a fresh
        // checkpoint — the crawl is slower but still converges.
        let corrupted = &json[..json.len() / 2];
        assert!(CrawlCheckpoint::from_json(corrupted).is_err());
        let recovered = CrawlCheckpoint::from_json(corrupted).unwrap_or_default();
        assert!(recovered.completed_items.is_empty());
        let mut resumed = ResumableCrawl::resume(CollectorConfig::default(), recovered);
        let added = resumed.crawl_increment(&site, 0);
        assert_eq!(added, 25, "fresh checkpoint recollects everything");
    }
}
