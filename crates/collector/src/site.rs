//! Simulated public website of the platform.
//!
//! Serves the three page kinds the paper's crawler walks (§IV-A): shop
//! homepages, per-shop item listings, and per-item comment pages — all
//! paginated JSON. To exercise the collector's cleaning logic the site
//! injects the noise a real crawl encounters:
//!
//! * **duplicate records** (pagination drift re-serves comments),
//! * **malformed JSON lines** (truncated responses),
//! * **transient errors** (HTTP-5xx equivalents that succeed on retry).
//!
//! Noise is deterministic in the site seed.

use cats_platform::Platform;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::records::{CommentRecord, ItemRecord, ShopRecord};

/// Noise and pagination knobs of the simulated site.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// Records per page.
    pub page_size: usize,
    /// Probability that a served comment record is a duplicate of the
    /// previous one on the page.
    pub duplicate_prob: f64,
    /// Probability that a served record line is malformed JSON.
    pub malformed_prob: f64,
    /// Probability that a page request fails transiently.
    pub error_prob: f64,
    /// Seed for the noise process.
    pub seed: u64,
}

impl Default for SiteConfig {
    fn default() -> Self {
        Self {
            page_size: 20,
            duplicate_prob: 0.02,
            malformed_prob: 0.01,
            error_prob: 0.02,
            seed: 0xD00D,
        }
    }
}

/// A transient page-fetch failure (the HTTP-5xx stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransientError;

impl std::fmt::Display for TransientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "transient server error")
    }
}

impl std::error::Error for TransientError {}

/// One fetched page: raw JSON lines plus whether more pages follow.
#[derive(Debug, Clone)]
pub struct Page {
    /// One JSON record per line (possibly malformed/duplicated).
    pub lines: Vec<String>,
    /// Whether a further page exists.
    pub has_next: bool,
}

/// The simulated site.
pub struct PublicSite<'a> {
    platform: &'a Platform,
    config: SiteConfig,
}

impl<'a> PublicSite<'a> {
    /// Wraps `platform` behind a public web surface.
    pub fn new(platform: &'a Platform, config: SiteConfig) -> Self {
        Self { platform, config }
    }

    /// Number of shops (a real crawler learns this by walking pages; tests
    /// and sanity checks use it directly).
    pub fn shop_count(&self) -> usize {
        self.platform.shops().len()
    }

    /// Deterministic per-request RNG: noise depends only on (seed, request
    /// identity), so a retry of the *same* page can succeed/fail
    /// independently while the overall process stays reproducible.
    fn request_rng(&self, kind: u64, id: u64, page: usize, attempt: u32) -> StdRng {
        let mix = self
            .config
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(kind)
            .wrapping_mul(31)
            .wrapping_add(id)
            .wrapping_mul(31)
            .wrapping_add(page as u64)
            .wrapping_mul(31)
            .wrapping_add(u64::from(attempt));
        StdRng::seed_from_u64(mix)
    }

    fn serve<T: serde::Serialize>(
        &self,
        records: &[T],
        page: usize,
        rng: &mut StdRng,
    ) -> Result<Page, TransientError> {
        if rng.random::<f64>() < self.config.error_prob {
            return Err(TransientError);
        }
        let start = page * self.config.page_size;
        let end = (start + self.config.page_size).min(records.len());
        let mut lines = Vec::with_capacity(end.saturating_sub(start));
        let mut prev: Option<String> = None;
        for r in records.get(start..end).unwrap_or(&[]) {
            let mut line = serde_json::to_string(r).expect("record serializes");
            if rng.random::<f64>() < self.config.malformed_prob {
                // Truncate at a char boundary: comments contain multibyte
                // CJK punctuation.
                let mut cut = line.len() / 2;
                while cut > 0 && !line.is_char_boundary(cut) {
                    cut -= 1;
                }
                line.truncate(cut);
            } else if let Some(p) = &prev {
                if rng.random::<f64>() < self.config.duplicate_prob {
                    lines.push(p.clone());
                }
            }
            prev = Some(line.clone());
            lines.push(line);
        }
        Ok(Page { lines, has_next: end < records.len() })
    }

    /// Fetches one page of shop records.
    pub fn shop_page(&self, page: usize, attempt: u32) -> Result<Page, TransientError> {
        let records: Vec<ShopRecord> = self
            .platform
            .shops()
            .iter()
            .map(|s| ShopRecord {
                shop_id: s.id,
                shop_name: s.name.clone(),
                shop_url: s.url.clone(),
            })
            .collect();
        let mut rng = self.request_rng(1, 0, page, attempt);
        self.serve(&records, page, &mut rng)
    }

    /// Fetches one page of a shop's item listing.
    pub fn item_page(&self, shop_id: u32, page: usize, attempt: u32) -> Result<Page, TransientError> {
        let records: Vec<ItemRecord> = self
            .platform
            .items()
            .iter()
            .filter(|i| i.shop_id == shop_id)
            .map(|i| ItemRecord {
                item_id: i.id,
                shop_id: i.shop_id,
                item_name: i.name.clone(),
                price_cents: i.price_cents,
                sales_volume: i.sales_volume,
            })
            .collect();
        let mut rng = self.request_rng(2, u64::from(shop_id), page, attempt);
        self.serve(&records, page, &mut rng)
    }

    /// Fetches one page of an item's comments.
    pub fn comment_page(&self, item_id: u64, page: usize, attempt: u32) -> Result<Page, TransientError> {
        let Some(item) = self.platform.item(item_id) else {
            return Ok(Page { lines: Vec::new(), has_next: false });
        };
        let records: Vec<CommentRecord> = item
            .comments
            .iter()
            .map(|c| {
                let user = self.platform.user(c.user_id).expect("valid user id");
                CommentRecord {
                    item_id: item.id,
                    comment_id: c.id,
                    comment_content: c.content.clone(),
                    nickname: user.nickname.clone(),
                    user_exp_value: user.exp_value,
                    client_information: c.client.name().to_string(),
                    date: c.date.clone(),
                }
            })
            .collect();
        let mut rng = self.request_rng(3, item_id, page, attempt);
        self.serve(&records, page, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_platform::{PlatformConfig, Platform};

    fn platform() -> Platform {
        Platform::generate(PlatformConfig {
            seed: 5,
            n_shops: 4,
            n_fraud_items: 10,
            n_normal_items: 30,
            ..PlatformConfig::default()
        })
    }

    fn noiseless(seed: u64) -> SiteConfig {
        SiteConfig {
            duplicate_prob: 0.0,
            malformed_prob: 0.0,
            error_prob: 0.0,
            seed,
            ..SiteConfig::default()
        }
    }

    #[test]
    fn shop_pages_cover_all_shops() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { page_size: 3, ..noiseless(1) });
        let p0 = site.shop_page(0, 0).unwrap();
        assert_eq!(p0.lines.len(), 3);
        assert!(p0.has_next);
        let p1 = site.shop_page(1, 0).unwrap();
        assert_eq!(p1.lines.len(), 1);
        assert!(!p1.has_next);
    }

    #[test]
    fn item_pages_filter_by_shop() {
        let p = platform();
        let site = PublicSite::new(&p, noiseless(1));
        let page = site.item_page(0, 0, 0).unwrap();
        for line in &page.lines {
            let r: ItemRecord = serde_json::from_str(line).unwrap();
            assert_eq!(r.shop_id, 0);
        }
    }

    #[test]
    fn comment_pages_parse_and_paginate() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { page_size: 5, ..noiseless(1) });
        // find an item with >5 comments
        let item = p.items().iter().find(|i| i.comments.len() > 5).expect("dense item");
        let page0 = site.comment_page(item.id, 0, 0).unwrap();
        assert_eq!(page0.lines.len(), 5);
        assert!(page0.has_next);
        let r: CommentRecord = serde_json::from_str(&page0.lines[0]).unwrap();
        assert_eq!(r.item_id, item.id);
        assert!(!r.nickname.is_empty());
    }

    #[test]
    fn unknown_item_serves_empty_page() {
        let p = platform();
        let site = PublicSite::new(&p, noiseless(1));
        let page = site.comment_page(999_999, 0, 0).unwrap();
        assert!(page.lines.is_empty());
        assert!(!page.has_next);
    }

    #[test]
    fn noise_injects_malformed_and_duplicate_lines() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: 0.5,
                malformed_prob: 0.3,
                error_prob: 0.0,
                page_size: 50,
                seed: 2,
            },
        );
        let mut malformed = 0;
        let mut total = 0;
        for item in p.items().iter().take(20) {
            let page = site.comment_page(item.id, 0, 0).unwrap();
            for line in &page.lines {
                total += 1;
                if serde_json::from_str::<CommentRecord>(line).is_err() {
                    malformed += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(malformed > 0, "expected some malformed lines");
    }

    #[test]
    fn transient_errors_happen_and_retries_can_succeed() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig { error_prob: 0.5, ..noiseless(3) },
        );
        let mut failures = 0;
        let mut recovered = 0;
        for page in 0..40 {
            if site.shop_page(page % 2, page as u32).is_err() {
                failures += 1;
                // a different attempt number re-rolls the noise
                for attempt in 1..10 {
                    if site.shop_page(page % 2, attempt + 100 + page as u32).is_ok() {
                        recovered += 1;
                        break;
                    }
                }
            }
        }
        assert!(failures > 0, "expected transient failures at p=0.5");
        assert!(recovered > 0, "retries should eventually succeed");
    }

    #[test]
    fn requests_are_deterministic_per_attempt() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { error_prob: 0.3, ..noiseless(4) });
        let a = site.shop_page(0, 7).map(|pg| pg.lines);
        let b = site.shop_page(0, 7).map(|pg| pg.lines);
        assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a, b);
        }
    }
}
