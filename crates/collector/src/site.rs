//! Simulated public website of the platform.
//!
//! Serves the three page kinds the paper's crawler walks (§IV-A): shop
//! homepages, per-shop item listings, and per-item comment pages — all
//! paginated JSON. To exercise the collector's cleaning logic the site
//! injects the benign noise a real crawl always encounters:
//!
//! * **duplicate records** (a record re-served on the same page),
//! * **malformed JSON lines** (lines cut mid-record),
//! * **transient errors** (HTTP-5xx equivalents that succeed on retry).
//!
//! On top of that, a [`FaultPlan`] layers the heavier failure modes a
//! week-long production crawl runs into (§VII): rate limiting with an
//! advertised retry-after, sustained per-resource outages, stalled
//! (slow) pages, responses truncated mid-record, pagination drift
//! (re-served and skipped pages), and poisoned records — valid JSON
//! whose fields are semantically absurd. All noise, benign and injected,
//! is deterministic in the site seed.

use std::cell::RefCell;
use std::collections::HashMap;

use cats_platform::Platform;
use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::records::{CommentRecord, ItemRecord, ShopRecord};

/// Schedule of injected faults, layered on top of the benign noise knobs
/// of [`SiteConfig`]. Probabilities are per request or per record;
/// everything is deterministic in the site seed. [`FaultPlan::none`]
/// (the default) disables every fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a page request is answered with the HTTP-429
    /// equivalent ([`FetchError::RateLimited`]).
    pub rate_limit_prob: f64,
    /// Advertised wait on a rate-limited response, simulated seconds.
    pub retry_after_secs: u64,
    /// Fraction of resources (the shop list, one shop's item listing,
    /// one item's comment walk) that suffer a sustained outage.
    pub outage_resource_prob: f64,
    /// Length of an outage window: that many consecutive requests to the
    /// affected resource fail with [`FetchError::Outage`].
    pub outage_len: u64,
    /// Probability that a served page stalls for `stall_secs`.
    pub stall_prob: f64,
    /// Simulated service delay of a stalled page, seconds.
    pub stall_secs: u64,
    /// Probability that a response is cut mid-record: the tail lines of
    /// the page are dropped and the last surviving line is truncated.
    pub truncate_prob: f64,
    /// Probability of pagination drift on a request: the server serves
    /// the previous page again (duplicates) or skips ahead one page
    /// (silently lost records).
    pub drift_prob: f64,
    /// Probability that a record is served poisoned: valid JSON whose
    /// fields are semantically absurd (absurd reliability scores,
    /// impossible dates, impossible prices).
    pub poison_prob: f64,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> Self {
        Self {
            rate_limit_prob: 0.0,
            retry_after_secs: 30,
            outage_resource_prob: 0.0,
            outage_len: 12,
            stall_prob: 0.0,
            stall_secs: 20,
            truncate_prob: 0.0,
            drift_prob: 0.0,
            poison_prob: 0.0,
        }
    }

    /// A plan scaled by a single intensity knob in `[0, 1]`: 0 is
    /// [`FaultPlan::none`], 1 is an aggressively hostile site. The
    /// `exp_chaos` sweep and the CLI `crawl --faults` flag use this.
    pub fn at_intensity(x: f64) -> Self {
        let x = x.clamp(0.0, 1.0);
        Self {
            rate_limit_prob: 0.08 * x,
            outage_resource_prob: 0.12 * x,
            stall_prob: 0.10 * x,
            truncate_prob: 0.08 * x,
            drift_prob: 0.06 * x,
            poison_prob: 0.05 * x,
            ..Self::none()
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_none(&self) -> bool {
        self.rate_limit_prob == 0.0
            && self.outage_resource_prob == 0.0
            && self.stall_prob == 0.0
            && self.truncate_prob == 0.0
            && self.drift_prob == 0.0
            && self.poison_prob == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Noise and pagination knobs of the simulated site.
#[derive(Debug, Clone, Copy)]
pub struct SiteConfig {
    /// Records per page.
    pub page_size: usize,
    /// Probability that a served comment record is a duplicate of the
    /// previous one on the page.
    pub duplicate_prob: f64,
    /// Probability that a served record line is malformed JSON.
    pub malformed_prob: f64,
    /// Probability that a page request fails transiently.
    pub error_prob: f64,
    /// Seed for the noise process.
    pub seed: u64,
    /// Injected fault schedule (defaults to [`FaultPlan::none`]).
    pub faults: FaultPlan,
}

impl Default for SiteConfig {
    fn default() -> Self {
        Self {
            page_size: 20,
            duplicate_prob: 0.02,
            malformed_prob: 0.01,
            error_prob: 0.02,
            seed: 0xD00D,
            faults: FaultPlan::none(),
        }
    }
}

/// Why a page fetch failed — the crawler's typed error taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchError {
    /// HTTP-5xx equivalent: retrying the request can succeed.
    Transient,
    /// HTTP-429 equivalent: the server asks the client to back off for
    /// the advertised number of (simulated) seconds.
    RateLimited {
        /// The server's advertised wait, seconds.
        retry_after_secs: u64,
    },
    /// The resource is inside a sustained outage window; immediate
    /// retries will keep failing until the window passes.
    Outage,
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Transient => write!(f, "transient server error"),
            FetchError::RateLimited { retry_after_secs } => {
                write!(f, "rate limited (retry after {retry_after_secs}s)")
            }
            FetchError::Outage => write!(f, "resource outage"),
        }
    }
}

impl std::error::Error for FetchError {}

/// One fetched page: raw JSON lines plus whether more pages follow.
#[derive(Debug, Clone)]
pub struct Page {
    /// One JSON record per line (possibly malformed/duplicated/poisoned).
    pub lines: Vec<String>,
    /// Whether a further page exists.
    pub has_next: bool,
    /// Simulated extra service time of this response (0 unless the page
    /// stalled).
    pub stall_secs: u64,
}

/// The simulated site.
pub struct PublicSite<'a> {
    platform: &'a Platform,
    config: SiteConfig,
    /// Requests served so far per resource `(kind, id)` — drives the
    /// sustained-outage windows. Interior mutability keeps the public
    /// fetch API `&self`, like a real remote server.
    hits: RefCell<HashMap<(u64, u64), u64>>,
}

impl<'a> PublicSite<'a> {
    /// Wraps `platform` behind a public web surface.
    pub fn new(platform: &'a Platform, config: SiteConfig) -> Self {
        Self { platform, config, hits: RefCell::new(HashMap::new()) }
    }

    /// Number of shops (a real crawler learns this by walking pages; tests
    /// and sanity checks use it directly).
    pub fn shop_count(&self) -> usize {
        self.platform.shops().len()
    }

    /// Deterministic per-request RNG: noise depends only on (seed, request
    /// identity), so a retry of the *same* page can succeed/fail
    /// independently while the overall process stays reproducible.
    fn request_rng(&self, kind: u64, id: u64, page: usize, attempt: u32) -> StdRng {
        let mix = self
            .config
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(kind)
            .wrapping_mul(31)
            .wrapping_add(id)
            .wrapping_mul(31)
            .wrapping_add(page as u64)
            .wrapping_mul(31)
            .wrapping_add(u64::from(attempt));
        StdRng::seed_from_u64(mix)
    }

    /// Stable per-resource hash for fault selection (independent of page
    /// and attempt, so a whole resource is either in the outage set or
    /// not).
    fn resource_hash(&self, kind: u64, id: u64) -> u64 {
        let mut h = self.config.seed ^ 0xA076_1D64_78BD_642F;
        for v in [kind, id] {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
            h ^= h >> 29;
            h = h.wrapping_mul(0x9E3779B97F4A7C15);
        }
        h
    }

    /// Records one request against `(kind, id)`, returning the ordinal of
    /// this request (0 for the first ever).
    fn bump_hits(&self, kind: u64, id: u64) -> u64 {
        let mut hits = self.hits.borrow_mut();
        let n = hits.entry((kind, id)).or_insert(0);
        let ordinal = *n;
        *n += 1;
        ordinal
    }

    /// Whether request `ordinal` against the resource falls inside the
    /// resource's outage window.
    fn in_outage(&self, kind: u64, id: u64, ordinal: u64) -> bool {
        let plan = self.config.faults;
        if plan.outage_resource_prob <= 0.0 || plan.outage_len == 0 {
            return false;
        }
        let h = self.resource_hash(kind, id);
        let affected = ((h >> 8) % 1_000_000) as f64 / 1_000_000.0 < plan.outage_resource_prob;
        if !affected {
            return false;
        }
        let start = (h >> 32) % 3; // outage begins within the first requests
        ordinal >= start && ordinal < start + plan.outage_len
    }

    fn serve<T: serde::Serialize + Clone>(
        &self,
        kind: u64,
        id: u64,
        records: &[T],
        page: usize,
        attempt: u32,
        poison: impl Fn(&mut T),
    ) -> Result<Page, FetchError> {
        let plan = self.config.faults;
        let ordinal = self.bump_hits(kind, id);
        if self.in_outage(kind, id, ordinal) {
            return Err(FetchError::Outage);
        }
        let mut rng = self.request_rng(kind, id, page, attempt);
        if rng.random::<f64>() < plan.rate_limit_prob {
            return Err(FetchError::RateLimited { retry_after_secs: plan.retry_after_secs });
        }
        if rng.random::<f64>() < self.config.error_prob {
            return Err(FetchError::Transient);
        }
        let stall_secs = if plan.stall_prob > 0.0 && rng.random::<f64>() < plan.stall_prob {
            plan.stall_secs
        } else {
            0
        };
        // Pagination drift: this request is actually answered with the
        // previous page (re-serve → duplicates) or the next one (skip →
        // silently lost records).
        let mut served_page = page;
        if plan.drift_prob > 0.0 && rng.random::<f64>() < plan.drift_prob {
            if rng.random::<f64>() < 0.5 {
                served_page = page.saturating_sub(1);
            } else {
                served_page = page + 1;
            }
        }

        let start = served_page * self.config.page_size;
        let end = (start + self.config.page_size).min(records.len());
        let mut lines = Vec::with_capacity(end.saturating_sub(start));
        let mut prev: Option<String> = None;
        for r in records.get(start..end).unwrap_or(&[]) {
            let mut record = r.clone();
            if plan.poison_prob > 0.0 && rng.random::<f64>() < plan.poison_prob {
                poison(&mut record);
            }
            let mut line = serde_json::to_string(&record).expect("record serializes");
            if rng.random::<f64>() < self.config.malformed_prob {
                cut_mid_record(&mut line);
            } else if let Some(p) = &prev {
                if rng.random::<f64>() < self.config.duplicate_prob {
                    lines.push(p.clone());
                }
            }
            prev = Some(line.clone());
            lines.push(line);
        }
        // Truncated response: the connection died mid-body — the page's
        // tail lines are gone and the last surviving line is cut.
        if plan.truncate_prob > 0.0 && !lines.is_empty() && rng.random::<f64>() < plan.truncate_prob
        {
            lines.truncate((lines.len() / 2).max(1));
            if let Some(last) = lines.last_mut() {
                cut_mid_record(last);
            }
        }
        Ok(Page { lines, has_next: end < records.len(), stall_secs })
    }

    /// Fetches one page of shop records.
    pub fn shop_page(&self, page: usize, attempt: u32) -> Result<Page, FetchError> {
        let records: Vec<ShopRecord> = self
            .platform
            .shops()
            .iter()
            .map(|s| ShopRecord {
                shop_id: s.id,
                shop_name: s.name.clone(),
                shop_url: s.url.clone(),
            })
            .collect();
        // Shop records carry no numeric fields worth poisoning.
        self.serve(1, 0, &records, page, attempt, |_r| {})
    }

    /// Fetches one page of a shop's item listing.
    pub fn item_page(&self, shop_id: u32, page: usize, attempt: u32) -> Result<Page, FetchError> {
        let records: Vec<ItemRecord> = self
            .platform
            .items()
            .iter()
            .filter(|i| i.shop_id == shop_id)
            .map(|i| ItemRecord {
                item_id: i.id,
                shop_id: i.shop_id,
                item_name: i.name.clone(),
                price_cents: i.price_cents,
                sales_volume: i.sales_volume,
            })
            .collect();
        self.serve(2, u64::from(shop_id), &records, page, attempt, |r: &mut ItemRecord| {
            r.price_cents = u64::MAX;
            r.sales_volume = u64::MAX;
        })
    }

    /// Fetches one page of an item's comments.
    pub fn comment_page(
        &self,
        item_id: u64,
        page: usize,
        attempt: u32,
    ) -> Result<Page, FetchError> {
        let Some(item) = self.platform.item(item_id) else {
            return Ok(Page { lines: Vec::new(), has_next: false, stall_secs: 0 });
        };
        let records: Vec<CommentRecord> = item
            .comments
            .iter()
            .map(|c| {
                let user = self.platform.user(c.user_id).expect("valid user id");
                CommentRecord {
                    item_id: item.id,
                    comment_id: c.id,
                    comment_content: c.content.clone(),
                    nickname: user.nickname.clone(),
                    user_exp_value: user.exp_value,
                    client_information: c.client.name().to_string(),
                    date: c.date.clone(),
                }
            })
            .collect();
        self.serve(3, item_id, &records, page, attempt, |r: &mut CommentRecord| {
            r.user_exp_value = u64::MAX;
            r.date = "0000-00-00 00:00:00".to_string();
            r.comment_content = String::new();
        })
    }
}

/// Truncates a JSON line roughly in half at a char boundary: comments
/// contain multibyte CJK punctuation.
fn cut_mid_record(line: &mut String) {
    let mut cut = line.len() / 2;
    while cut > 0 && !line.is_char_boundary(cut) {
        cut -= 1;
    }
    line.truncate(cut);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cats_platform::{Platform, PlatformConfig};

    fn platform() -> Platform {
        Platform::generate(PlatformConfig {
            seed: 5,
            n_shops: 4,
            n_fraud_items: 10,
            n_normal_items: 30,
            ..PlatformConfig::default()
        })
    }

    fn noiseless(seed: u64) -> SiteConfig {
        SiteConfig {
            duplicate_prob: 0.0,
            malformed_prob: 0.0,
            error_prob: 0.0,
            seed,
            ..SiteConfig::default()
        }
    }

    #[test]
    fn shop_pages_cover_all_shops() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { page_size: 3, ..noiseless(1) });
        let p0 = site.shop_page(0, 0).unwrap();
        assert_eq!(p0.lines.len(), 3);
        assert!(p0.has_next);
        let p1 = site.shop_page(1, 0).unwrap();
        assert_eq!(p1.lines.len(), 1);
        assert!(!p1.has_next);
    }

    #[test]
    fn item_pages_filter_by_shop() {
        let p = platform();
        let site = PublicSite::new(&p, noiseless(1));
        let page = site.item_page(0, 0, 0).unwrap();
        for line in &page.lines {
            let r: ItemRecord = serde_json::from_str(line).unwrap();
            assert_eq!(r.shop_id, 0);
        }
    }

    #[test]
    fn comment_pages_parse_and_paginate() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { page_size: 5, ..noiseless(1) });
        // find an item with >5 comments
        let item = p.items().iter().find(|i| i.comments.len() > 5).expect("dense item");
        let page0 = site.comment_page(item.id, 0, 0).unwrap();
        assert_eq!(page0.lines.len(), 5);
        assert!(page0.has_next);
        let r: CommentRecord = serde_json::from_str(&page0.lines[0]).unwrap();
        assert_eq!(r.item_id, item.id);
        assert!(!r.nickname.is_empty());
    }

    #[test]
    fn unknown_item_serves_empty_page() {
        let p = platform();
        let site = PublicSite::new(&p, noiseless(1));
        let page = site.comment_page(999_999, 0, 0).unwrap();
        assert!(page.lines.is_empty());
        assert!(!page.has_next);
    }

    #[test]
    fn noise_injects_malformed_and_duplicate_lines() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: 0.5,
                malformed_prob: 0.3,
                error_prob: 0.0,
                page_size: 50,
                seed: 2,
                faults: FaultPlan::none(),
            },
        );
        let mut malformed = 0;
        let mut total = 0;
        for item in p.items().iter().take(20) {
            let page = site.comment_page(item.id, 0, 0).unwrap();
            for line in &page.lines {
                total += 1;
                if serde_json::from_str::<CommentRecord>(line).is_err() {
                    malformed += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(malformed > 0, "expected some malformed lines");
    }

    #[test]
    fn transient_errors_happen_and_retries_can_succeed() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { error_prob: 0.5, ..noiseless(3) });
        let mut failures = 0;
        let mut recovered = 0;
        for page in 0..40 {
            if site.shop_page(page % 2, page as u32).is_err() {
                failures += 1;
                // a different attempt number re-rolls the noise
                for attempt in 1..10 {
                    if site.shop_page(page % 2, attempt + 100 + page as u32).is_ok() {
                        recovered += 1;
                        break;
                    }
                }
            }
        }
        assert!(failures > 0, "expected transient failures at p=0.5");
        assert!(recovered > 0, "retries should eventually succeed");
    }

    #[test]
    fn requests_are_deterministic_per_attempt() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { error_prob: 0.3, ..noiseless(4) });
        let a = site.shop_page(0, 7).map(|pg| pg.lines);
        let b = site.shop_page(0, 7).map(|pg| pg.lines);
        assert_eq!(a.is_ok(), b.is_ok());
        if let (Ok(a), Ok(b)) = (a, b) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rate_limits_carry_retry_after() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan {
                    rate_limit_prob: 0.9,
                    retry_after_secs: 45,
                    ..FaultPlan::none()
                },
                ..noiseless(6)
            },
        );
        let mut limited = 0;
        for page in 0..20 {
            if let Err(FetchError::RateLimited { retry_after_secs }) = site.shop_page(0, page) {
                assert_eq!(retry_after_secs, 45);
                limited += 1;
            }
        }
        assert!(limited > 0, "expected rate-limited responses at p=0.9");
    }

    #[test]
    fn outage_fails_a_span_of_requests_then_recovers() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan {
                    outage_resource_prob: 1.0, // every resource is affected
                    outage_len: 5,
                    ..FaultPlan::none()
                },
                ..noiseless(7)
            },
        );
        // Hammer one resource: the outage window (≤3 start + 5 long) must
        // show up as consecutive Outage errors, then pass.
        let mut results = Vec::new();
        for attempt in 0..20 {
            results.push(site.shop_page(0, attempt).is_ok());
        }
        let failures = results.iter().filter(|ok| !**ok).count();
        assert_eq!(failures, 5, "outage spans exactly outage_len requests");
        assert!(*results.last().unwrap(), "resource recovers after the window");
    }

    #[test]
    fn poisoned_comments_are_valid_json_with_absurd_fields() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                page_size: 50,
                faults: FaultPlan { poison_prob: 0.8, ..FaultPlan::none() },
                ..noiseless(8)
            },
        );
        let mut poisoned = 0;
        let mut total = 0;
        for item in p.items().iter().take(20) {
            let page = site.comment_page(item.id, 0, 0).unwrap();
            for line in &page.lines {
                let r: CommentRecord = serde_json::from_str(line).expect("poison stays valid JSON");
                total += 1;
                if r.user_exp_value == u64::MAX {
                    assert!(r.date.starts_with("0000"));
                    poisoned += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(poisoned > 0, "expected poisoned records at p=0.8");
    }

    #[test]
    fn truncated_pages_lose_their_tail() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                page_size: 50,
                faults: FaultPlan { truncate_prob: 1.0, ..FaultPlan::none() },
                ..noiseless(9)
            },
        );
        let item = p.items().iter().find(|i| i.comments.len() > 3).expect("dense item");
        let full_len = p.item(item.id).unwrap().comments.len().min(50);
        let page = site.comment_page(item.id, 0, 0).unwrap();
        assert!(page.lines.len() < full_len, "tail lines dropped");
        let last = page.lines.last().unwrap();
        assert!(serde_json::from_str::<CommentRecord>(last).is_err(), "last line cut mid-record");
    }

    #[test]
    fn stalls_mark_pages_slow() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan { stall_prob: 1.0, stall_secs: 20, ..FaultPlan::none() },
                ..noiseless(10)
            },
        );
        let page = site.shop_page(0, 0).unwrap();
        assert_eq!(page.stall_secs, 20);
        let clean = PublicSite::new(&p, noiseless(10));
        assert_eq!(clean.shop_page(0, 0).unwrap().stall_secs, 0);
    }

    #[test]
    fn intensity_zero_is_no_faults() {
        assert!(FaultPlan::at_intensity(0.0).is_none());
        assert!(!FaultPlan::at_intensity(1.0).is_none());
        assert!(FaultPlan::none().is_none());
    }
}
