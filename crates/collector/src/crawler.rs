//! The collector: crawls the public site into a [`CollectedDataset`].
//!
//! Mirrors the paper's §IV-A procedure: (1) fetch all shop homepages;
//! (2) scrape each shop's item listing; (3) scrape every comment page of
//! every item. Noise handling matches what any production crawler needs:
//! bounded retries on transient errors, malformed-line skipping, and
//! comment-id deduplication (the paper's data collector "can filter the
//! noisy data (e.g., duplicated data records)").

use std::collections::HashSet;

use crate::records::{
    CollectedComment, CollectedDataset, CollectedItem, CommentRecord, ItemRecord, ShopRecord,
};
use crate::site::{Page, PublicSite, TransientError};

/// Crawl limits and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Maximum retries per page before giving up on it.
    pub max_retries: u32,
    /// Hard cap on items collected (0 = unlimited) — the paper subsamples
    /// its crawl for ethics reasons; this is the equivalent knob.
    pub max_items: usize,
    /// Hard cap on comment pages fetched per item (0 = unlimited).
    pub max_comment_pages_per_item: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self { max_retries: 5, max_items: 0, max_comment_pages_per_item: 0 }
    }
}

/// Counters describing what a crawl did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Pages fetched successfully.
    pub pages_fetched: u64,
    /// Transient errors encountered (including those retried away).
    pub transient_errors: u64,
    /// Pages abandoned after exhausting retries.
    pub pages_abandoned: u64,
    /// Records dropped as malformed JSON.
    pub malformed_records: u64,
    /// Records dropped as duplicates (already-seen comment ids).
    pub duplicate_records: u64,
}

/// The crawler.
pub struct Collector {
    config: CollectorConfig,
    stats: CrawlStats,
}

impl Collector {
    /// Creates a collector.
    pub fn new(config: CollectorConfig) -> Self {
        Self { config, stats: CrawlStats::default() }
    }

    /// Statistics of the most recent crawl.
    pub fn stats(&self) -> CrawlStats {
        self.stats
    }

    /// Fetches a page with retries; `None` if abandoned.
    fn fetch_with_retries(
        &mut self,
        mut fetch: impl FnMut(u32) -> Result<Page, TransientError>,
    ) -> Option<Page> {
        for attempt in 0..=self.config.max_retries {
            match fetch(attempt) {
                Ok(page) => {
                    self.stats.pages_fetched += 1;
                    return Some(page);
                }
                Err(TransientError) => {
                    self.stats.transient_errors += 1;
                }
            }
        }
        self.stats.pages_abandoned += 1;
        None
    }

    /// Walks every page of one paginated resource, feeding parsed records
    /// of type `T` to `sink`.
    fn walk_pages<T: serde::de::DeserializeOwned>(
        &mut self,
        mut fetch: impl FnMut(usize, u32) -> Result<Page, TransientError>,
        max_pages: usize,
        mut sink: impl FnMut(T),
    ) {
        let mut page_no = 0usize;
        loop {
            if max_pages > 0 && page_no >= max_pages {
                break;
            }
            let Some(page) = self.fetch_with_retries(|attempt| fetch(page_no, attempt)) else {
                break; // abandoned page: stop walking this resource
            };
            for line in &page.lines {
                match serde_json::from_str::<T>(line) {
                    Ok(rec) => sink(rec),
                    Err(_) => self.stats.malformed_records += 1,
                }
            }
            if !page.has_next {
                break;
            }
            page_no += 1;
        }
    }

    /// Runs the full three-stage crawl against `site`.
    pub fn crawl(&mut self, site: &PublicSite<'_>) -> CollectedDataset {
        self.stats = CrawlStats::default();
        let mut dataset = CollectedDataset::default();

        // Stage 1: shop homepages.
        let mut shops: Vec<ShopRecord> = Vec::new();
        let mut seen_shops: HashSet<u32> = HashSet::new();
        self.walk_pages(|p, a| site.shop_page(p, a), 0, |rec: ShopRecord| {
            if seen_shops.insert(rec.shop_id) {
                shops.push(rec);
            }
        });

        // Stage 2: item listings per shop.
        let mut items: Vec<ItemRecord> = Vec::new();
        let mut seen_items: HashSet<u64> = HashSet::new();
        'shops: for shop in &shops {
            let mut full = false;
            let max_items = self.config.max_items;
            self.walk_pages(
                |p, a| site.item_page(shop.shop_id, p, a),
                0,
                |rec: ItemRecord| {
                    if max_items > 0 && items.len() >= max_items {
                        full = true;
                        return;
                    }
                    if seen_items.insert(rec.item_id) {
                        items.push(rec);
                    }
                },
            );
            if full {
                break 'shops;
            }
        }

        // Stage 3: comments per item.
        let mut seen_comments: HashSet<u64> = HashSet::new();
        for item in items {
            let mut comments: Vec<CollectedComment> = Vec::new();
            let mut dupes = 0u64;
            self.walk_pages(
                |p, a| site.comment_page(item.item_id, p, a),
                self.config.max_comment_pages_per_item,
                |rec: CommentRecord| {
                    if rec.item_id != item.item_id {
                        return; // cross-item leakage: treat as noise
                    }
                    if !seen_comments.insert(rec.comment_id) {
                        dupes += 1;
                        return;
                    }
                    comments.push(CollectedComment {
                        comment_id: rec.comment_id,
                        content: rec.comment_content,
                        nickname: rec.nickname,
                        user_exp_value: rec.user_exp_value,
                        client: rec.client_information,
                        date: rec.date,
                    });
                },
            );
            self.stats.duplicate_records += dupes;
            dataset.items.push(CollectedItem {
                item_id: item.item_id,
                shop_id: item.shop_id,
                name: item.item_name,
                price_cents: item.price_cents,
                sales_volume: item.sales_volume,
                comments,
            });
        }
        dataset.shops = shops;
        dataset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteConfig;
    use cats_platform::{Platform, PlatformConfig};

    fn platform() -> Platform {
        Platform::generate(PlatformConfig {
            seed: 77,
            n_shops: 5,
            n_fraud_items: 8,
            n_normal_items: 40,
            ..PlatformConfig::default()
        })
    }

    fn clean_site(p: &Platform) -> PublicSite<'_> {
        PublicSite::new(
            p,
            SiteConfig {
                duplicate_prob: 0.0,
                malformed_prob: 0.0,
                error_prob: 0.0,
                seed: 1,
                ..SiteConfig::default()
            },
        )
    }

    #[test]
    fn clean_crawl_recovers_everything() {
        let p = platform();
        let site = clean_site(&p);
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        assert_eq!(data.shops.len(), 5);
        assert_eq!(data.items.len(), p.items().len());
        assert_eq!(data.comment_count(), p.comment_count());
        let s = c.stats();
        assert_eq!(s.malformed_records, 0);
        assert_eq!(s.duplicate_records, 0);
        assert_eq!(s.pages_abandoned, 0);
        assert!(s.pages_fetched > 0);
    }

    #[test]
    fn crawl_contents_match_platform_ground_truth() {
        let p = platform();
        let site = clean_site(&p);
        let data = Collector::new(CollectorConfig::default()).crawl(&site);
        for collected in &data.items {
            let truth = p.item(collected.item_id).unwrap();
            assert_eq!(collected.sales_volume, truth.sales_volume);
            assert_eq!(collected.comments.len(), truth.comments.len());
            for (cc, tc) in collected.comments.iter().zip(&truth.comments) {
                assert_eq!(cc.content, tc.content);
                assert_eq!(cc.client, tc.client.name());
            }
        }
    }

    #[test]
    fn noisy_crawl_filters_duplicates_and_malformed() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: 0.2,
                malformed_prob: 0.1,
                error_prob: 0.05,
                seed: 9,
                ..SiteConfig::default()
            },
        );
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        let s = c.stats();
        assert!(s.duplicate_records > 0, "{s:?}");
        assert!(s.malformed_records > 0, "{s:?}");
        assert!(s.transient_errors > 0, "{s:?}");
        // dedup: no repeated comment ids anywhere
        let mut ids: Vec<u64> = data
            .items
            .iter()
            .flat_map(|i| i.comments.iter().map(|c| c.comment_id))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        // Noise loses records (a malformed shop line loses that shop's
        // whole subtree) but never invents them, and the crawl still
        // recovers the bulk of the catalogue.
        assert!(data.items.len() <= p.items().len());
        assert!(
            data.items.len() * 3 >= p.items().len(),
            "kept {} of {}",
            data.items.len(),
            p.items().len()
        );
    }

    #[test]
    fn max_items_caps_the_crawl() {
        let p = platform();
        let site = clean_site(&p);
        let mut c = Collector::new(CollectorConfig { max_items: 7, ..CollectorConfig::default() });
        let data = c.crawl(&site);
        assert_eq!(data.items.len(), 7);
    }

    #[test]
    fn max_comment_pages_caps_depth() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                page_size: 2,
                duplicate_prob: 0.0,
                malformed_prob: 0.0,
                error_prob: 0.0,
                seed: 1,
            },
        );
        let mut c = Collector::new(CollectorConfig {
            max_comment_pages_per_item: 1,
            ..CollectorConfig::default()
        });
        let data = c.crawl(&site);
        for item in &data.items {
            assert!(item.comments.len() <= 2, "one page of size 2");
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig { duplicate_prob: 0.1, malformed_prob: 0.05, error_prob: 0.05, seed: 3, ..SiteConfig::default() },
        );
        let a = Collector::new(CollectorConfig::default()).crawl(&site);
        let b = Collector::new(CollectorConfig::default()).crawl(&site);
        assert_eq!(a.comment_count(), b.comment_count());
        assert_eq!(a.items.len(), b.items.len());
    }

    #[test]
    fn stats_reset_between_crawls() {
        let p = platform();
        let site = clean_site(&p);
        let mut c = Collector::new(CollectorConfig::default());
        c.crawl(&site);
        let first = c.stats().pages_fetched;
        c.crawl(&site);
        assert_eq!(c.stats().pages_fetched, first, "stats are per-crawl");
    }
}
