//! The collector: crawls the public site into a [`CollectedDataset`].
//!
//! Mirrors the paper's §IV-A procedure: (1) fetch all shop homepages;
//! (2) scrape each shop's item listing; (3) scrape every comment page of
//! every item. Noise handling matches what any production crawler needs:
//! typed fetch errors with exponential backoff and deterministic jitter,
//! rate-limit compliance (honouring the server's retry-after), a
//! per-resource circuit breaker for sustained outages, malformed-line
//! skipping, comment-id deduplication, and poisoned-record sanity checks
//! (the paper's data collector "can filter the noisy data (e.g.,
//! duplicated data records)").
//!
//! All waiting is accounted on a **simulated clock** (same style as
//! [`crate::politeness`]): backoff, retry-after, and breaker cooldowns
//! advance `CrawlStats::sim_clock_secs` instead of sleeping, so crawls
//! are fast and fully deterministic in the site seed.

use std::collections::HashSet;

use crate::records::{
    CollectedComment, CollectedDataset, CollectedItem, CommentRecord, ItemRecord, ShopRecord,
};
use crate::site::{FetchError, Page, PublicSite};

/// Exponential-backoff policy for retryable fetch errors.
#[derive(Debug, Clone, Copy)]
pub struct BackoffPolicy {
    /// First wait, simulated seconds (doubles per attempt).
    pub base_secs: u64,
    /// Cap on a single backoff wait, before jitter.
    pub max_secs: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self { base_secs: 1, max_secs: 64 }
    }
}

impl BackoffPolicy {
    /// Wait before retry number `attempt` (0-based), with deterministic
    /// jitter derived from the simulated clock — no RNG, no wall clock.
    pub fn wait_secs(&self, attempt: u32, clock_secs: u64) -> u64 {
        let capped = self.base_secs.saturating_mul(1u64 << attempt.min(16)).min(self.max_secs);
        let h = (clock_secs ^ u64::from(attempt).wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_mul(0xD1B54A32D192ED03);
        capped + h % (capped / 2 + 1)
    }
}

/// Per-resource circuit-breaker policy.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive failures on a resource that open the breaker.
    pub failure_threshold: u32,
    /// First cooldown, simulated seconds (doubles per trip).
    pub cooldown_secs: u64,
    /// Trips after which the resource is given up as unreachable.
    pub max_trips: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self { failure_threshold: 4, cooldown_secs: 60, max_trips: 3 }
    }
}

/// Crawl limits and retry policy.
#[derive(Debug, Clone, Copy)]
pub struct CollectorConfig {
    /// Maximum retries per page within one burst before giving up on it
    /// (breaker cooldowns reset the burst).
    pub max_retries: u32,
    /// Hard cap on items collected (0 = unlimited) — the paper subsamples
    /// its crawl for ethics reasons; this is the equivalent knob.
    pub max_items: usize,
    /// Hard cap on comment pages fetched per item (0 = unlimited).
    pub max_comment_pages_per_item: usize,
    /// Backoff policy for retryable errors.
    pub backoff: BackoffPolicy,
    /// Circuit-breaker policy for failing resources.
    pub breaker: BreakerPolicy,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        Self {
            max_retries: 5,
            max_items: 0,
            max_comment_pages_per_item: 0,
            backoff: BackoffPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }
}

/// Counters describing what a crawl did. Everything is integral so the
/// struct stays `Eq` — the determinism tests compare whole values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Pages fetched successfully.
    pub pages_fetched: u64,
    /// Transient errors encountered (including those retried away).
    pub transient_errors: u64,
    /// Rate-limited responses encountered.
    pub rate_limited: u64,
    /// Outage errors encountered.
    pub outage_errors: u64,
    /// Pages abandoned after exhausting a retry burst.
    pub pages_abandoned: u64,
    /// Records dropped as malformed JSON.
    pub malformed_records: u64,
    /// Records dropped as duplicates (already-seen comment ids).
    pub duplicate_records: u64,
    /// Records dropped by the poisoned-record sanity checks.
    pub poisoned_records: u64,
    /// Backoff / retry-after waits taken.
    pub backoff_waits: u64,
    /// Simulated seconds spent in backoff / retry-after waits.
    pub backoff_wait_secs: u64,
    /// Circuit-breaker trips (closed → open transitions).
    pub breaker_opens: u64,
    /// Simulated seconds spent waiting out breaker cooldowns.
    pub breaker_wait_secs: u64,
    /// Resources given up after exhausting breaker trips.
    pub breaker_give_ups: u64,
    /// Resources whose page walk ended early (abandoned page or breaker
    /// give-up): their tail records were never fetched.
    pub truncated_resources: u64,
    /// Pages that stalled (served slowly).
    pub stalled_pages: u64,
    /// Simulated seconds lost to stalled pages.
    pub stall_secs: u64,
    /// Total simulated waiting time of the crawl (backoff + breaker +
    /// stalls); request pacing on top of this is [`crate::politeness`]'s
    /// job.
    pub sim_clock_secs: u64,
}

/// Circuit-breaker state for one resource (one paginated walk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { until_secs: u64 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    consecutive_failures: u32,
    trips: u32,
    given_up: bool,
}

enum BreakerEvent {
    None,
    Opened,
    GaveUp,
}

impl Breaker {
    fn new() -> Self {
        Self { state: BreakerState::Closed, consecutive_failures: 0, trips: 0, given_up: false }
    }

    fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Feeds one breaker-relevant failure; may open the breaker or give
    /// the resource up.
    fn on_failure(&mut self, policy: &BreakerPolicy, now_secs: u64) -> BreakerEvent {
        match self.state {
            BreakerState::HalfOpen => self.trip(policy, now_secs),
            _ => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= policy.failure_threshold {
                    self.trip(policy, now_secs)
                } else {
                    BreakerEvent::None
                }
            }
        }
    }

    fn trip(&mut self, policy: &BreakerPolicy, now_secs: u64) -> BreakerEvent {
        self.trips += 1;
        self.consecutive_failures = 0;
        if self.trips > policy.max_trips {
            self.given_up = true;
            BreakerEvent::GaveUp
        } else {
            let cooldown = policy.cooldown_secs.saturating_mul(1u64 << (self.trips - 1).min(16));
            self.state = BreakerState::Open { until_secs: now_secs + cooldown };
            BreakerEvent::Opened
        }
    }
}

/// Registry-backed mirrors of every [`CrawlStats`] field, resolved once
/// at collector construction so the hot paths only touch atomics. The
/// public `CrawlStats` struct stays the per-crawl source of truth (it
/// resets on every `crawl`); these counters accumulate monotonically
/// across crawls, so per-run views come from registry snapshot diffs.
struct CrawlCounters {
    pages_fetched: std::sync::Arc<cats_obs::Counter>,
    transient_errors: std::sync::Arc<cats_obs::Counter>,
    rate_limited: std::sync::Arc<cats_obs::Counter>,
    outage_errors: std::sync::Arc<cats_obs::Counter>,
    pages_abandoned: std::sync::Arc<cats_obs::Counter>,
    malformed_records: std::sync::Arc<cats_obs::Counter>,
    duplicate_records: std::sync::Arc<cats_obs::Counter>,
    poisoned_records: std::sync::Arc<cats_obs::Counter>,
    backoff_waits: std::sync::Arc<cats_obs::Counter>,
    backoff_wait_secs: std::sync::Arc<cats_obs::Counter>,
    breaker_opens: std::sync::Arc<cats_obs::Counter>,
    breaker_wait_secs: std::sync::Arc<cats_obs::Counter>,
    breaker_give_ups: std::sync::Arc<cats_obs::Counter>,
    truncated_resources: std::sync::Arc<cats_obs::Counter>,
    stalled_pages: std::sync::Arc<cats_obs::Counter>,
    stall_secs: std::sync::Arc<cats_obs::Counter>,
    sim_clock_secs: std::sync::Arc<cats_obs::Counter>,
}

impl CrawlCounters {
    fn new() -> Self {
        let c = cats_obs::counter;
        Self {
            pages_fetched: c("cats.collector.crawl.pages_fetched"),
            transient_errors: c("cats.collector.crawl.transient_errors"),
            rate_limited: c("cats.collector.crawl.rate_limited"),
            outage_errors: c("cats.collector.crawl.outage_errors"),
            pages_abandoned: c("cats.collector.crawl.pages_abandoned"),
            malformed_records: c("cats.collector.crawl.malformed_records"),
            duplicate_records: c("cats.collector.crawl.duplicate_records"),
            poisoned_records: c("cats.collector.crawl.poisoned_records"),
            backoff_waits: c("cats.collector.crawl.backoff_waits"),
            backoff_wait_secs: c("cats.collector.crawl.backoff_wait_secs"),
            breaker_opens: c("cats.collector.crawl.breaker_opens"),
            breaker_wait_secs: c("cats.collector.crawl.breaker_wait_secs"),
            breaker_give_ups: c("cats.collector.crawl.breaker_give_ups"),
            truncated_resources: c("cats.collector.crawl.truncated_resources"),
            stalled_pages: c("cats.collector.crawl.stalled_pages"),
            stall_secs: c("cats.collector.crawl.stall_secs"),
            sim_clock_secs: c("cats.collector.crawl.sim_clock_secs"),
        }
    }
}

/// The crawler.
pub struct Collector {
    config: CollectorConfig,
    stats: CrawlStats,
    counters: CrawlCounters,
}

impl Collector {
    /// Creates a collector.
    pub fn new(config: CollectorConfig) -> Self {
        Self { config, stats: CrawlStats::default(), counters: CrawlCounters::new() }
    }

    /// Statistics of the most recent crawl.
    pub fn stats(&self) -> CrawlStats {
        self.stats
    }

    /// Advances the simulated clock by a backoff/retry-after wait.
    fn wait(&mut self, secs: u64) {
        self.stats.backoff_waits += 1;
        self.stats.backoff_wait_secs += secs;
        self.stats.sim_clock_secs += secs;
        self.counters.backoff_waits.inc();
        self.counters.backoff_wait_secs.add(secs);
        self.counters.sim_clock_secs.add(secs);
    }

    /// Fetches a page with backoff, rate-limit compliance, and the
    /// resource's circuit breaker; `None` if the page (or the whole
    /// resource) was given up.
    fn fetch_page(
        &mut self,
        breaker: &mut Breaker,
        mut fetch: impl FnMut(u32) -> Result<Page, FetchError>,
    ) -> Option<Page> {
        let mut burst_attempt = 0u32;
        let mut total_attempt = 0u32;
        loop {
            if breaker.given_up {
                return None;
            }
            if let BreakerState::Open { until_secs } = breaker.state {
                let wait = until_secs.saturating_sub(self.stats.sim_clock_secs);
                self.stats.breaker_wait_secs += wait;
                self.stats.sim_clock_secs += wait;
                self.counters.breaker_wait_secs.add(wait);
                self.counters.sim_clock_secs.add(wait);
                breaker.state = BreakerState::HalfOpen;
                burst_attempt = 0; // the cooldown resets the retry budget
            }
            match fetch(total_attempt) {
                Ok(page) => {
                    breaker.on_success();
                    self.stats.pages_fetched += 1;
                    self.counters.pages_fetched.inc();
                    if page.stall_secs > 0 {
                        self.stats.stalled_pages += 1;
                        self.stats.stall_secs += page.stall_secs;
                        self.stats.sim_clock_secs += page.stall_secs;
                        self.counters.stalled_pages.inc();
                        self.counters.stall_secs.add(page.stall_secs);
                        self.counters.sim_clock_secs.add(page.stall_secs);
                    }
                    return Some(page);
                }
                Err(err) => {
                    total_attempt += 1;
                    // Rate limiting is the server pacing us, not failing:
                    // honour retry-after, don't feed the breaker.
                    let breaker_event = match err {
                        FetchError::Transient => {
                            self.stats.transient_errors += 1;
                            self.counters.transient_errors.inc();
                            breaker.on_failure(&self.config.breaker, self.stats.sim_clock_secs)
                        }
                        FetchError::Outage => {
                            self.stats.outage_errors += 1;
                            self.counters.outage_errors.inc();
                            breaker.on_failure(&self.config.breaker, self.stats.sim_clock_secs)
                        }
                        FetchError::RateLimited { .. } => {
                            self.stats.rate_limited += 1;
                            self.counters.rate_limited.inc();
                            BreakerEvent::None
                        }
                    };
                    match breaker_event {
                        BreakerEvent::Opened => {
                            self.stats.breaker_opens += 1;
                            self.counters.breaker_opens.inc();
                            continue; // cooldown handled at the loop top
                        }
                        BreakerEvent::GaveUp => {
                            self.stats.breaker_give_ups += 1;
                            self.counters.breaker_give_ups.inc();
                            return None;
                        }
                        BreakerEvent::None => {}
                    }
                    if burst_attempt >= self.config.max_retries {
                        self.stats.pages_abandoned += 1;
                        self.counters.pages_abandoned.inc();
                        return None;
                    }
                    let wait = match err {
                        FetchError::RateLimited { retry_after_secs } => retry_after_secs,
                        _ => {
                            self.config.backoff.wait_secs(burst_attempt, self.stats.sim_clock_secs)
                        }
                    };
                    self.wait(wait);
                    burst_attempt += 1;
                }
            }
        }
    }

    /// Walks every page of one paginated resource, feeding parsed records
    /// of type `T` to `sink`. Returns `true` if the walk was truncated —
    /// a page was abandoned or the breaker gave the resource up, so tail
    /// records were never fetched.
    fn walk_pages<T: serde::de::DeserializeOwned>(
        &mut self,
        mut fetch: impl FnMut(usize, u32) -> Result<Page, FetchError>,
        max_pages: usize,
        mut sink: impl FnMut(T),
    ) -> bool {
        let mut breaker = Breaker::new();
        let mut page_no = 0usize;
        loop {
            if max_pages > 0 && page_no >= max_pages {
                return false; // voluntary cap, not data loss
            }
            let Some(page) = self.fetch_page(&mut breaker, |attempt| fetch(page_no, attempt))
            else {
                self.stats.truncated_resources += 1;
                self.counters.truncated_resources.inc();
                return true;
            };
            for line in &page.lines {
                match serde_json::from_str::<T>(line) {
                    Ok(rec) => sink(rec),
                    Err(_) => {
                        self.stats.malformed_records += 1;
                        self.counters.malformed_records.inc();
                    }
                }
            }
            if !page.has_next {
                return false;
            }
            page_no += 1;
        }
    }

    /// Runs the full three-stage crawl against `site`.
    pub fn crawl(&mut self, site: &PublicSite<'_>) -> CollectedDataset {
        let _span = cats_obs::span!("cats.collector.crawl");
        self.stats = CrawlStats::default();
        let mut dataset = CollectedDataset::default();

        // Stage 1: shop homepages.
        let mut shops: Vec<ShopRecord> = Vec::new();
        let mut seen_shops: HashSet<u32> = HashSet::new();
        let mut catalogue_truncated = self.walk_pages(
            |p, a| site.shop_page(p, a),
            0,
            |rec: ShopRecord| {
                if seen_shops.insert(rec.shop_id) {
                    shops.push(rec);
                }
            },
        );

        // Stage 2: item listings per shop.
        let mut items: Vec<ItemRecord> = Vec::new();
        let mut seen_items: HashSet<u64> = HashSet::new();
        let mut poisoned_total = 0u64;
        'shops: for shop in &shops {
            let mut full = false;
            let mut poisoned = 0u64;
            let max_items = self.config.max_items;
            let truncated = self.walk_pages(
                |p, a| site.item_page(shop.shop_id, p, a),
                0,
                |rec: ItemRecord| {
                    if item_record_poisoned(&rec) {
                        poisoned += 1;
                        return;
                    }
                    if max_items > 0 && items.len() >= max_items {
                        full = true;
                        return;
                    }
                    if seen_items.insert(rec.item_id) {
                        items.push(rec);
                    }
                },
            );
            poisoned_total += poisoned;
            catalogue_truncated |= truncated;
            if full {
                break 'shops;
            }
        }

        // Stage 3: comments per item.
        let mut seen_comments: HashSet<u64> = HashSet::new();
        for item in items {
            let mut comments: Vec<CollectedComment> = Vec::new();
            let mut dupes = 0u64;
            let mut poisoned = 0u64;
            let truncated = self.walk_pages(
                |p, a| site.comment_page(item.item_id, p, a),
                self.config.max_comment_pages_per_item,
                |rec: CommentRecord| {
                    if rec.item_id != item.item_id {
                        return; // cross-item leakage: treat as noise
                    }
                    if comment_record_poisoned(&rec) {
                        poisoned += 1;
                        return;
                    }
                    if !seen_comments.insert(rec.comment_id) {
                        dupes += 1;
                        return;
                    }
                    comments.push(CollectedComment {
                        comment_id: rec.comment_id,
                        content: rec.comment_content,
                        nickname: rec.nickname,
                        user_exp_value: rec.user_exp_value,
                        client: rec.client_information,
                        date: rec.date,
                    });
                },
            );
            self.stats.duplicate_records += dupes;
            self.counters.duplicate_records.add(dupes);
            poisoned_total += poisoned;
            dataset.items.push(CollectedItem {
                item_id: item.item_id,
                shop_id: item.shop_id,
                name: item.item_name,
                price_cents: item.price_cents,
                sales_volume: item.sales_volume,
                comments,
                truncated,
            });
        }
        self.stats.poisoned_records += poisoned_total;
        self.counters.poisoned_records.add(poisoned_total);
        dataset.shops = shops;
        dataset.catalogue_truncated = catalogue_truncated;
        dataset
    }
}

/// Sanity bounds for poisoned records. The generator's real ranges are
/// far below these (prices cap at 5M cents, userExpValue at ~27M), so a
/// record beyond them is corrupt regardless of platform scale.
fn item_record_poisoned(rec: &ItemRecord) -> bool {
    rec.price_cents > 1_000_000_000 || rec.sales_volume > 100_000_000
}

fn comment_record_poisoned(rec: &CommentRecord) -> bool {
    rec.user_exp_value > 100_000_000 || !rec.date.starts_with('2')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{FaultPlan, SiteConfig};
    use cats_platform::{Platform, PlatformConfig};

    fn platform() -> Platform {
        Platform::generate(PlatformConfig {
            seed: 77,
            n_shops: 5,
            n_fraud_items: 8,
            n_normal_items: 40,
            ..PlatformConfig::default()
        })
    }

    fn clean_config(seed: u64) -> SiteConfig {
        SiteConfig {
            duplicate_prob: 0.0,
            malformed_prob: 0.0,
            error_prob: 0.0,
            seed,
            ..SiteConfig::default()
        }
    }

    fn clean_site(p: &Platform) -> PublicSite<'_> {
        PublicSite::new(p, clean_config(1))
    }

    #[test]
    fn clean_crawl_recovers_everything() {
        let p = platform();
        let site = clean_site(&p);
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        assert_eq!(data.shops.len(), 5);
        assert_eq!(data.items.len(), p.items().len());
        assert_eq!(data.comment_count(), p.comment_count());
        assert!(!data.catalogue_truncated);
        assert!(data.items.iter().all(|i| !i.truncated));
        let s = c.stats();
        assert_eq!(s.malformed_records, 0);
        assert_eq!(s.duplicate_records, 0);
        assert_eq!(s.pages_abandoned, 0);
        assert_eq!(s.poisoned_records, 0);
        assert_eq!(s.sim_clock_secs, 0);
        assert!(s.pages_fetched > 0);
    }

    #[test]
    fn crawl_contents_match_platform_ground_truth() {
        let p = platform();
        let site = clean_site(&p);
        let data = Collector::new(CollectorConfig::default()).crawl(&site);
        for collected in &data.items {
            let truth = p.item(collected.item_id).unwrap();
            assert_eq!(collected.sales_volume, truth.sales_volume);
            assert_eq!(collected.comments.len(), truth.comments.len());
            for (cc, tc) in collected.comments.iter().zip(&truth.comments) {
                assert_eq!(cc.content, tc.content);
                assert_eq!(cc.client, tc.client.name());
            }
        }
    }

    #[test]
    fn noisy_crawl_filters_duplicates_and_malformed() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: 0.2,
                malformed_prob: 0.1,
                error_prob: 0.05,
                seed: 9,
                ..SiteConfig::default()
            },
        );
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        let s = c.stats();
        assert!(s.duplicate_records > 0, "{s:?}");
        assert!(s.malformed_records > 0, "{s:?}");
        assert!(s.transient_errors > 0, "{s:?}");
        // dedup: no repeated comment ids anywhere
        let mut ids: Vec<u64> =
            data.items.iter().flat_map(|i| i.comments.iter().map(|c| c.comment_id)).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        // Noise loses records (a malformed shop line loses that shop's
        // whole subtree) but never invents them, and the crawl still
        // recovers the bulk of the catalogue.
        assert!(data.items.len() <= p.items().len());
        assert!(
            data.items.len() * 3 >= p.items().len(),
            "kept {} of {}",
            data.items.len(),
            p.items().len()
        );
    }

    #[test]
    fn max_items_caps_the_crawl() {
        let p = platform();
        let site = clean_site(&p);
        let mut c = Collector::new(CollectorConfig { max_items: 7, ..CollectorConfig::default() });
        let data = c.crawl(&site);
        assert_eq!(data.items.len(), 7);
    }

    #[test]
    fn max_comment_pages_caps_depth() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { page_size: 2, ..clean_config(1) });
        let mut c = Collector::new(CollectorConfig {
            max_comment_pages_per_item: 1,
            ..CollectorConfig::default()
        });
        let data = c.crawl(&site);
        for item in &data.items {
            assert!(item.comments.len() <= 2, "one page of size 2");
            assert!(!item.truncated, "a voluntary cap is not truncation");
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: 0.1,
                malformed_prob: 0.05,
                error_prob: 0.05,
                seed: 3,
                ..SiteConfig::default()
            },
        );
        let a = Collector::new(CollectorConfig::default()).crawl(&site);
        let b = Collector::new(CollectorConfig::default()).crawl(&site);
        assert_eq!(a.comment_count(), b.comment_count());
        assert_eq!(a.items.len(), b.items.len());
    }

    #[test]
    fn faulted_crawl_is_deterministic_including_stats() {
        let p = platform();
        let config = SiteConfig { faults: FaultPlan::at_intensity(0.8), ..clean_config(11) };
        // fresh site per run: outage windows count per-site requests
        let mut c1 = Collector::new(CollectorConfig::default());
        let d1 = c1.crawl(&PublicSite::new(&p, config));
        let mut c2 = Collector::new(CollectorConfig::default());
        let d2 = c2.crawl(&PublicSite::new(&p, config));
        assert_eq!(c1.stats(), c2.stats());
        assert_eq!(d1, d2);
    }

    #[test]
    fn backoff_waits_accrue_on_simulated_clock() {
        let p = platform();
        let site = PublicSite::new(&p, SiteConfig { error_prob: 0.3, ..clean_config(12) });
        let mut c = Collector::new(CollectorConfig::default());
        c.crawl(&site);
        let s = c.stats();
        assert!(s.transient_errors > 0, "{s:?}");
        assert!(s.backoff_waits > 0, "{s:?}");
        assert!(s.backoff_wait_secs >= s.backoff_waits, "waits are ≥1s each: {s:?}");
        assert_eq!(s.sim_clock_secs, s.backoff_wait_secs + s.breaker_wait_secs + s.stall_secs);
    }

    #[test]
    fn rate_limits_are_honoured_not_hammered() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan {
                    rate_limit_prob: 0.3,
                    retry_after_secs: 37,
                    ..FaultPlan::none()
                },
                ..clean_config(13)
            },
        );
        // a large retry budget so no page is abandoned mid-429-burst
        let mut c =
            Collector::new(CollectorConfig { max_retries: 20, ..CollectorConfig::default() });
        c.crawl(&site);
        let s = c.stats();
        assert!(s.rate_limited > 0, "{s:?}");
        assert_eq!(s.pages_abandoned, 0, "{s:?}");
        // every rate-limited response waits exactly the advertised 37s
        assert_eq!(s.backoff_wait_secs, s.rate_limited * 37, "{s:?}");
        assert_eq!(s.breaker_opens, 0, "429s must not trip the breaker: {s:?}");
    }

    #[test]
    fn breaker_rides_out_short_outages() {
        let p = platform();
        // outage_len 5 ≤ threshold 4 + (max_trips − 1) probes, so every
        // affected resource recovers via the half-open probe.
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan { outage_resource_prob: 1.0, outage_len: 5, ..FaultPlan::none() },
                ..clean_config(14)
            },
        );
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        let s = c.stats();
        assert!(s.outage_errors > 0, "{s:?}");
        assert!(s.breaker_opens > 0, "{s:?}");
        assert!(s.breaker_wait_secs > 0, "{s:?}");
        assert_eq!(s.breaker_give_ups, 0, "{s:?}");
        assert_eq!(s.truncated_resources, 0, "{s:?}");
        assert_eq!(data.comment_count(), p.comment_count(), "full recovery");
        assert!(!data.catalogue_truncated);
    }

    #[test]
    fn breaker_gives_up_on_sustained_outages_and_marks_truncation() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan {
                    outage_resource_prob: 0.5,
                    outage_len: 50, // far beyond the breaker's patience
                    ..FaultPlan::none()
                },
                ..clean_config(15)
            },
        );
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        let s = c.stats();
        assert!(s.breaker_give_ups > 0, "{s:?}");
        assert_eq!(s.truncated_resources, s.breaker_give_ups + s.pages_abandoned, "{s:?}");
        let item_truncations = data.items.iter().filter(|i| i.truncated).count() as u64;
        assert!(
            data.catalogue_truncated || item_truncations > 0,
            "give-ups must surface as completeness flags: {s:?}"
        );
    }

    #[test]
    fn poisoned_records_are_quarantined_at_the_crawler() {
        let p = platform();
        let site = PublicSite::new(
            &p,
            SiteConfig {
                faults: FaultPlan { poison_prob: 0.2, ..FaultPlan::none() },
                ..clean_config(16)
            },
        );
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);
        let s = c.stats();
        assert!(s.poisoned_records > 0, "{s:?}");
        for item in &data.items {
            assert!(item.price_cents < 1_000_000_000);
            assert!(item.sales_volume < 100_000_000);
            for comment in &item.comments {
                assert!(comment.user_exp_value < 100_000_000);
                assert!(comment.date.starts_with('2'));
            }
        }
    }

    #[test]
    fn stats_reset_between_crawls() {
        let p = platform();
        let site = clean_site(&p);
        let mut c = Collector::new(CollectorConfig::default());
        c.crawl(&site);
        let first = c.stats().pages_fetched;
        c.crawl(&site);
        assert_eq!(c.stats().pages_fetched, first, "stats are per-crawl");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let b = BackoffPolicy { base_secs: 1, max_secs: 8 };
        // jitter is bounded by half the capped wait
        for attempt in 0..10 {
            let w = b.wait_secs(attempt, 1234);
            let capped = (1u64 << attempt.min(16)).min(8);
            assert!(w >= capped && w <= capped + capped / 2, "attempt {attempt}: {w}");
        }
        assert_eq!(b.wait_secs(3, 77), b.wait_secs(3, 77), "deterministic");
    }
}
