//! Property-based tests for the collector: across arbitrary seeds and
//! noise levels, the crawl obeys its cleaning invariants.

use cats_collector::{Collector, CollectorConfig, FaultPlan, PublicSite, SiteConfig};
use cats_platform::{Platform, PlatformConfig};
use proptest::prelude::*;

fn platform(seed: u64) -> Platform {
    Platform::generate(PlatformConfig {
        seed,
        n_shops: 3,
        n_fraud_items: 4,
        n_normal_items: 12,
        users: cats_platform::campaign::UserPopulationConfig { n_users: 300, hired_fraction: 0.05 },
        ..PlatformConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn crawl_invariants_under_noise(
        seed in any::<u64>(),
        dup in 0.0f64..0.3,
        malformed in 0.0f64..0.2,
        err in 0.0f64..0.2,
    ) {
        let p = platform(seed);
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: dup,
                malformed_prob: malformed,
                error_prob: err,
                seed: seed.wrapping_add(1),
                page_size: 7,
                faults: FaultPlan::none(),
            },
        );
        let mut c = Collector::new(CollectorConfig::default());
        let data = c.crawl(&site);

        // Never invents entities.
        prop_assert!(data.shops.len() <= p.shops().len());
        prop_assert!(data.items.len() <= p.items().len());
        prop_assert!(data.comment_count() <= p.comment_count());

        // Every collected item maps to a real one with matching metadata.
        for item in &data.items {
            let truth = p.item(item.item_id).expect("item exists");
            prop_assert_eq!(item.sales_volume, truth.sales_volume);
            prop_assert!(item.comments.len() <= truth.comments.len());
        }

        // Comment ids globally unique (dedup worked).
        let mut ids: Vec<u64> = data
            .items
            .iter()
            .flat_map(|i| i.comments.iter().map(|c| c.comment_id))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);

        // Stats are consistent: without noise, nothing is dropped.
        let stats = c.stats();
        if malformed == 0.0 {
            prop_assert_eq!(stats.malformed_records, 0);
        }
        if dup == 0.0 && malformed == 0.0 {
            prop_assert_eq!(stats.duplicate_records, 0);
        }
        if err == 0.0 {
            prop_assert_eq!(stats.transient_errors, 0);
            prop_assert_eq!(stats.pages_abandoned, 0);
        }
    }

    #[test]
    fn crawl_invariants_under_faults(
        seed in any::<u64>(),
        intensity in 0.0f64..1.0,
    ) {
        let p = platform(seed);
        let config = SiteConfig {
            duplicate_prob: 0.05,
            malformed_prob: 0.05,
            error_prob: 0.05,
            seed: seed.wrapping_add(2),
            faults: FaultPlan::at_intensity(intensity),
            ..SiteConfig::default()
        };
        let mut c1 = Collector::new(CollectorConfig::default());
        let d1 = c1.crawl(&PublicSite::new(&p, config));
        let mut c2 = Collector::new(CollectorConfig::default());
        let d2 = c2.crawl(&PublicSite::new(&p, config));

        // Deterministic in (seed, FaultPlan): identical stats and data.
        prop_assert_eq!(c1.stats(), c2.stats());
        prop_assert_eq!(&d1, &d2);

        // Never invents entities; poisoned records never survive.
        prop_assert!(d1.items.len() <= p.items().len());
        for item in &d1.items {
            prop_assert!(item.price_cents < 1_000_000_000);
            for comment in &item.comments {
                prop_assert!(comment.user_exp_value < 100_000_000);
                prop_assert!(comment.date.starts_with('2'));
            }
        }

        // Completeness flags cover every truncation the stats report.
        let stats = c1.stats();
        prop_assert_eq!(
            stats.truncated_resources,
            stats.breaker_give_ups + stats.pages_abandoned
        );
        if stats.truncated_resources > 0 {
            let flagged = d1.catalogue_truncated
                || d1.items.iter().any(|i| i.truncated);
            prop_assert!(flagged, "truncation must be visible in the dataset");
        }
    }

    #[test]
    fn max_items_is_respected(seed in any::<u64>(), cap in 1usize..10) {
        let p = platform(seed);
        let site = PublicSite::new(
            &p,
            SiteConfig {
                duplicate_prob: 0.0,
                malformed_prob: 0.0,
                error_prob: 0.0,
                seed,
                ..SiteConfig::default()
            },
        );
        let mut c = Collector::new(CollectorConfig { max_items: cap, ..CollectorConfig::default() });
        let data = c.crawl(&site);
        prop_assert!(data.items.len() <= cap);
    }
}
