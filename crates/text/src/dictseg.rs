//! Dictionary-based word segmentation (maximum matching).
//!
//! Chinese e-commerce comments are written without word delimiters; the
//! paper's pipeline runs a word segmenter before any feature is computed.
//! [`DictSegmenter`] implements the classical *bidirectional maximum
//! matching* algorithm over a known vocabulary: at each position, the
//! longest dictionary word starting (forward pass) or ending (backward
//! pass) there is taken; the pass with fewer resulting words (ties: fewer
//! single-character leftovers) wins. Unknown spans fall back to
//! single-character tokens.
//!
//! Paired with `cats_platform`'s unspaced rendering this exercises the
//! same segment-then-extract path a real Chinese deployment runs.

use crate::segment::{is_punctuation_char, Segmenter};
use std::collections::HashSet;

/// A maximum-matching segmenter over an explicit vocabulary.
#[derive(Debug, Clone)]
pub struct DictSegmenter {
    words: HashSet<String>,
    max_word_chars: usize,
}

impl DictSegmenter {
    /// Builds the segmenter from a vocabulary iterator. Word lookups are
    /// exact; the maximum word length bounds the matching window.
    pub fn new<I: IntoIterator<Item = String>>(vocab: I) -> Self {
        let words: HashSet<String> = vocab.into_iter().filter(|w| !w.is_empty()).collect();
        let max_word_chars = words.iter().map(|w| w.chars().count()).max().unwrap_or(1);
        Self { words, max_word_chars }
    }

    /// Number of dictionary words.
    pub fn vocab_len(&self) -> usize {
        self.words.len()
    }

    /// Forward maximum matching over a delimiter-free span.
    fn forward(&self, chars: &[char], out: &mut Vec<String>) {
        let mut i = 0;
        while i < chars.len() {
            let mut matched = 0;
            let hi = (i + self.max_word_chars).min(chars.len());
            // longest match first
            for j in (i + 1..=hi).rev() {
                let cand: String = chars[i..j].iter().collect();
                if self.words.contains(&cand) {
                    out.push(cand);
                    matched = j - i;
                    break;
                }
            }
            if matched == 0 {
                out.push(chars[i].to_string());
                i += 1;
            } else {
                i += matched;
            }
        }
    }

    /// Backward maximum matching (longest word *ending* at each position,
    /// scanning right to left).
    fn backward(&self, chars: &[char], out: &mut Vec<String>) {
        let mut rev: Vec<String> = Vec::new();
        let mut i = chars.len();
        while i > 0 {
            let lo = i.saturating_sub(self.max_word_chars);
            let mut matched = 0;
            for j in lo..i {
                let cand: String = chars[j..i].iter().collect();
                if self.words.contains(&cand) {
                    rev.push(cand);
                    matched = i - j;
                    break;
                }
            }
            if matched == 0 {
                rev.push(chars[i - 1].to_string());
                i -= 1;
            } else {
                i -= matched;
            }
        }
        out.extend(rev.into_iter().rev());
    }

    /// Segments one delimiter-free span bidirectionally and keeps the
    /// better pass: fewer tokens, ties broken by fewer single-char tokens
    /// (the standard disambiguation heuristic).
    fn segment_span(&self, chars: &[char], out: &mut Vec<String>) {
        if chars.is_empty() {
            return;
        }
        let mut fwd = Vec::new();
        self.forward(chars, &mut fwd);
        let mut bwd = Vec::new();
        self.backward(chars, &mut bwd);
        let singles = |v: &[String]| v.iter().filter(|w| w.chars().count() == 1).count();
        let pick_backward =
            bwd.len() < fwd.len() || (bwd.len() == fwd.len() && singles(&bwd) < singles(&fwd));
        out.extend(if pick_backward { bwd } else { fwd });
    }
}

impl Segmenter for DictSegmenter {
    fn segment_into(&self, text: &str, out: &mut Vec<String>) {
        out.clear();
        let mut span: Vec<char> = Vec::new();
        for c in text.chars() {
            if c.is_whitespace() {
                let chars = std::mem::take(&mut span);
                self.segment_span(&chars, out);
            } else if is_punctuation_char(c) {
                let chars = std::mem::take(&mut span);
                self.segment_span(&chars, out);
                out.push(c.to_string());
            } else {
                span.push(c);
            }
        }
        self.segment_span(&span, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(vocab: &[&str]) -> DictSegmenter {
        DictSegmenter::new(vocab.iter().map(|s| s.to_string()))
    }

    #[test]
    fn segments_unspaced_known_words() {
        let s = seg(&["haoping", "zhide", "mai"]);
        assert_eq!(s.segment("haopingzhidemai"), vec!["haoping", "zhide", "mai"]);
    }

    #[test]
    fn longest_match_wins() {
        // "haoping" must beat the shorter prefix "hao".
        let s = seg(&["hao", "haoping", "ping"]);
        assert_eq!(s.segment("haoping"), vec!["haoping"]);
    }

    #[test]
    fn unknown_spans_fall_back_to_chars() {
        let s = seg(&["mai"]);
        assert_eq!(s.segment("xymai"), vec!["x", "y", "mai"]);
    }

    #[test]
    fn punctuation_breaks_spans_and_is_kept() {
        let s = seg(&["hao", "cha"]);
        assert_eq!(s.segment("hao！cha"), vec!["hao", "！", "cha"]);
    }

    #[test]
    fn whitespace_breaks_spans() {
        let s = seg(&["ab", "abc"]);
        assert_eq!(s.segment("ab abc"), vec!["ab", "abc"]);
    }

    #[test]
    fn backward_pass_disambiguates() {
        // Forward on "abc" with dict {ab, bc, abc? no}: fwd → [ab, c];
        // bwd → [a, bc]. Equal length, equal singles → forward kept.
        let s = seg(&["ab", "bc"]);
        let toks = s.segment("abc");
        assert_eq!(toks.len(), 2);
        // Classic case where backward wins: dict {a, ab, cb, b} on "acb":
        // fwd: [a, c, b] (3); bwd: [a, cb] (2).
        let s2 = seg(&["a", "ab", "cb", "b"]);
        assert_eq!(s2.segment("acb"), vec!["a", "cb"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        let s = seg(&["a"]);
        assert!(s.segment("").is_empty());
        assert!(s.segment("   ").is_empty());
    }

    #[test]
    fn roundtrips_platform_language_without_spaces() {
        // Simulate: a spaced sentence whose tokens are all in the dict
        // segments identically once spaces are removed.
        let vocab = ["haoping", "zhide", "manyi", "kuaidi", "de"];
        let s = seg(&vocab);
        let spaced = "haoping zhide manyi de kuaidi";
        let unspaced: String = spaced.split_whitespace().collect();
        let expect: Vec<String> = spaced.split_whitespace().map(String::from).collect();
        assert_eq!(s.segment(&unspaced), expect);
    }

    #[test]
    fn vocab_len_reported() {
        assert_eq!(seg(&["a", "b", ""]).vocab_len(), 2, "empty words dropped");
    }
}
