//! The positive set *P* and negative set *N* (paper Table I).
//!
//! The paper builds these sets by expanding a handful of seed words with a
//! word2vec model (each set capped at ~200 words "for computation
//! efficiency"). This module holds the resulting [`Lexicon`] and the counting
//! helpers used by the word-level features; the expansion algorithm itself
//! lives in `cats-embedding::expand`.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Positive and negative word sets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Lexicon {
    positive: HashSet<String>,
    negative: HashSet<String>,
}

impl Lexicon {
    /// Builds a lexicon from word iterators. A word appearing in both lists
    /// is kept only in the positive set (positive evidence is what fraud
    /// campaigns inject, so ambiguity resolves toward *P*; the expansion
    /// algorithm never produces overlaps in practice).
    pub fn new<P, N>(positive: P, negative: N) -> Self
    where
        P: IntoIterator<Item = String>,
        N: IntoIterator<Item = String>,
    {
        let positive: HashSet<String> = positive.into_iter().collect();
        let negative = negative.into_iter().filter(|w| !positive.contains(w)).collect();
        Self { positive, negative }
    }

    /// An empty lexicon.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether `word` is in the positive set *P*.
    #[inline]
    pub fn is_positive(&self, word: &str) -> bool {
        self.positive.contains(word)
    }

    /// Whether `word` is in the negative set *N*.
    #[inline]
    pub fn is_negative(&self, word: &str) -> bool {
        self.negative.contains(word)
    }

    /// Size of the positive set.
    pub fn positive_len(&self) -> usize {
        self.positive.len()
    }

    /// Size of the negative set.
    pub fn negative_len(&self) -> usize {
        self.negative.len()
    }

    /// Iterates positive words in unspecified order.
    pub fn positive_words(&self) -> impl Iterator<Item = &str> {
        self.positive.iter().map(String::as_str)
    }

    /// Iterates negative words in unspecified order.
    pub fn negative_words(&self) -> impl Iterator<Item = &str> {
        self.negative.iter().map(String::as_str)
    }

    /// Inserts a positive word; returns `false` if already present.
    pub fn add_positive(&mut self, word: &str) -> bool {
        self.positive.insert(word.to_owned())
    }

    /// Inserts a negative word (unless it is already positive); returns
    /// `false` if it was not inserted.
    pub fn add_negative(&mut self, word: &str) -> bool {
        if self.positive.contains(word) {
            return false;
        }
        self.negative.insert(word.to_owned())
    }

    /// Number of tokens of `tokens` that are in *P* — the per-comment term
    /// of the paper's `averagePositiveNumber` (`|Cᵢʲ ∩ P|` counted with
    /// multiplicity, since a promotional comment repeating a positive word
    /// repeats the promotion).
    pub fn positive_count(&self, tokens: &[String]) -> usize {
        tokens.iter().filter(|t| self.is_positive(t)).count()
    }

    /// Number of tokens of `tokens` that are in *N*.
    pub fn negative_count(&self, tokens: &[String]) -> usize {
        tokens.iter().filter(|t| self.is_negative(t)).count()
    }

    /// `| |Cᵢʲ ∩ P| − |Cᵢʲ ∩ N| |` — the per-comment term of the paper's
    /// `averagePositive/NegativeNumber` feature.
    pub fn positive_negative_diff(&self, tokens: &[String]) -> usize {
        self.positive_count(tokens).abs_diff(self.negative_count(tokens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex() -> Lexicon {
        Lexicon::new(
            ["hao", "zan", "piaoliang"].map(String::from),
            ["cha", "lan"].map(String::from),
        )
    }

    fn toks(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn membership() {
        let l = lex();
        assert!(l.is_positive("hao"));
        assert!(!l.is_positive("cha"));
        assert!(l.is_negative("cha"));
        assert!(!l.is_negative("hao"));
        assert!(!l.is_positive("neutral"));
        assert_eq!(l.positive_len(), 3);
        assert_eq!(l.negative_len(), 2);
    }

    #[test]
    fn overlap_resolves_positive() {
        let l = Lexicon::new(["w".to_string()], ["w".to_string()]);
        assert!(l.is_positive("w"));
        assert!(!l.is_negative("w"));
    }

    #[test]
    fn add_negative_refuses_existing_positive() {
        let mut l = lex();
        assert!(!l.add_negative("hao"));
        assert!(l.add_negative("zaogao"));
        assert!(!l.add_negative("zaogao"), "second insert is a no-op");
    }

    #[test]
    fn counts_with_multiplicity() {
        let l = lex();
        let t = toks(&["hao", "hao", "cha", "x", "zan"]);
        assert_eq!(l.positive_count(&t), 3);
        assert_eq!(l.negative_count(&t), 1);
        assert_eq!(l.positive_negative_diff(&t), 2);
    }

    #[test]
    fn diff_is_absolute() {
        let l = lex();
        let t = toks(&["cha", "lan", "hao"]);
        assert_eq!(l.positive_negative_diff(&t), 1);
        let t2 = toks(&["cha", "lan"]);
        assert_eq!(l.positive_negative_diff(&t2), 2);
    }

    #[test]
    fn empty_lexicon_counts_zero() {
        let l = Lexicon::empty();
        let t = toks(&["hao", "cha"]);
        assert_eq!(l.positive_count(&t), 0);
        assert_eq!(l.negative_count(&t), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let l = lex();
        let s = serde_json::to_string(&l).unwrap();
        let l2: Lexicon = serde_json::from_str(&s).unwrap();
        assert!(l2.is_positive("hao"));
        assert!(l2.is_negative("cha"));
        assert_eq!(l2.positive_len(), l.positive_len());
    }
}
