//! Word segmentation.
//!
//! The paper segments each Chinese comment into its word set before any
//! feature is computed. Our synthetic corpus is whitespace-delimited, so the
//! stand-in segmenter splits on whitespace and additionally detaches
//! punctuation marks into their own tokens — the punctuation features
//! (Fig 2, `sumPunctuationNumber`, `averagePunctuationRatio`) need
//! punctuation to survive segmentation as countable tokens.

/// Characters treated as punctuation by the segmenter and by
/// [`is_punctuation_token`]. Includes both ASCII and full-width CJK marks,
/// mirroring the mixed punctuation of real e-commerce comments.
pub const PUNCTUATION: &[char] =
    &[',', '.', '!', '?', ';', ':', '~', '…', '，', '。', '！', '？', '；', '：', '、'];

/// Returns `true` if `c` counts as punctuation for the structural features.
#[inline]
pub fn is_punctuation_char(c: char) -> bool {
    PUNCTUATION.contains(&c)
}

/// Returns `true` if every character of `tok` is punctuation (and `tok` is
/// non-empty).
#[inline]
pub fn is_punctuation_token(tok: &str) -> bool {
    !tok.is_empty() && tok.chars().all(is_punctuation_char)
}

/// A word segmenter: raw comment text → token sequence.
///
/// The paper's pipeline uses a Chinese word segmenter here; swapping the
/// implementation is the only change needed to run CATS on a platform with a
/// different comment language — exactly the cross-platform property the
/// paper claims.
pub trait Segmenter {
    /// Segments `text` into tokens, appending to `out` (reusing its
    /// allocation; `out` is cleared first).
    fn segment_into(&self, text: &str, out: &mut Vec<String>);

    /// Convenience wrapper returning a fresh `Vec`.
    fn segment(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.segment_into(text, &mut out);
        out
    }
}

/// Splits on Unicode whitespace and detaches punctuation characters into
/// standalone tokens.
///
/// ```
/// use cats_text::segment::{Segmenter, WhitespaceSegmenter};
/// let s = WhitespaceSegmenter::default();
/// assert_eq!(
///     s.segment("hao ping! zhide mai."),
///     vec!["hao", "ping", "!", "zhide", "mai", "."]
/// );
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct WhitespaceSegmenter;

impl Segmenter for WhitespaceSegmenter {
    fn segment_into(&self, text: &str, out: &mut Vec<String>) {
        out.clear();
        let mut word = String::new();
        for c in text.chars() {
            if c.is_whitespace() {
                if !word.is_empty() {
                    out.push(std::mem::take(&mut word));
                }
            } else if is_punctuation_char(c) {
                if !word.is_empty() {
                    out.push(std::mem::take(&mut word));
                }
                out.push(c.to_string());
            } else {
                word.push(c);
            }
        }
        if !word.is_empty() {
            out.push(word);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(text: &str) -> Vec<String> {
        WhitespaceSegmenter.segment(text)
    }

    #[test]
    fn splits_on_whitespace() {
        assert_eq!(seg("a b  c\td"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(seg("").is_empty());
        assert!(seg("   \t\n ").is_empty());
    }

    #[test]
    fn detaches_ascii_punctuation() {
        assert_eq!(seg("good!bad?"), vec!["good", "!", "bad", "?"]);
    }

    #[test]
    fn detaches_cjk_punctuation() {
        assert_eq!(seg("hao，ping。"), vec!["hao", "，", "ping", "。"]);
    }

    #[test]
    fn consecutive_punctuation_yields_separate_tokens() {
        assert_eq!(seg("wow!!!"), vec!["wow", "!", "!", "!"]);
    }

    #[test]
    fn punctuation_token_predicate() {
        assert!(is_punctuation_token("!"));
        assert!(is_punctuation_token("。"));
        assert!(!is_punctuation_token("a!"));
        assert!(!is_punctuation_token(""));
        assert!(!is_punctuation_token("word"));
    }

    #[test]
    fn segment_into_reuses_buffer() {
        let s = WhitespaceSegmenter;
        let mut buf = vec!["stale".to_string()];
        s.segment_into("x y", &mut buf);
        assert_eq!(buf, vec!["x", "y"]);
    }

    #[test]
    fn no_whitespace_single_token() {
        assert_eq!(seg("haoping"), vec!["haoping"]);
    }
}
