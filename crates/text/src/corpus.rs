//! Tokenized comment containers shared across the workspace.
//!
//! A [`TokenizedComment`] keeps the raw comment text alongside its
//! segmentation result; a [`Corpus`] is a flat collection of tokenized
//! comments plus the [`Vocab`] interning their words, which is what the
//! word2vec trainer and the sentiment model consume.

use crate::segment::Segmenter;
use crate::token::{TokenId, Vocab};
use serde::{Deserialize, Serialize};

/// A comment with both its raw text and segmentation result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenizedComment {
    /// Raw comment text, pre-segmentation.
    pub text: String,
    /// Word segmentation result (the paper's `Cᵢʲ(t)` sequence).
    pub tokens: Vec<String>,
}

impl TokenizedComment {
    /// Segments `text` with `segmenter`.
    pub fn new(text: impl Into<String>, segmenter: &impl Segmenter) -> Self {
        let text = text.into();
        let tokens = segmenter.segment(&text);
        Self { text, tokens }
    }

    /// Wraps an already-segmented comment.
    pub fn from_parts(text: impl Into<String>, tokens: Vec<String>) -> Self {
        Self { text: text.into(), tokens }
    }
}

/// A corpus of tokenized comments with an interning vocabulary.
///
/// Token ids are stored as one flat `Vec<TokenId>` per comment; the
/// embedding trainer iterates comments as sentences.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    vocab: Vocab,
    sentences: Vec<Vec<TokenId>>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one segmented comment, interning its tokens.
    pub fn push_tokens(&mut self, tokens: &[String]) {
        let ids = self.vocab.intern_all(tokens);
        self.sentences.push(ids);
    }

    /// Adds raw text after segmenting it.
    pub fn push_text(&mut self, text: &str, segmenter: &impl Segmenter) {
        let toks = segmenter.segment(text);
        self.push_tokens(&toks);
    }

    /// Adds a batch of raw texts, segmenting them in parallel.
    ///
    /// Segmentation (the CPU-heavy part) fans out across worker threads;
    /// interning stays serial in input order, so the resulting vocabulary
    /// ids and sentence order are identical to repeated
    /// [`Corpus::push_text`] calls at any thread count.
    pub fn push_texts<S, T>(&mut self, texts: &[T], segmenter: &S, par: cats_par::Parallelism)
    where
        S: Segmenter + Sync,
        T: AsRef<str> + Sync,
    {
        let segmented: Vec<Vec<String>> =
            cats_par::map_chunked(par, texts, |t| segmenter.segment(t.as_ref()));
        for toks in &segmented {
            self.push_tokens(toks);
        }
    }

    /// The interning vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Sentences as token-id slices.
    pub fn sentences(&self) -> &[Vec<TokenId>] {
        &self.sentences
    }

    /// Number of sentences (comments).
    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    /// Whether the corpus holds no sentences.
    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    /// Total token count across all sentences.
    pub fn token_count(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::WhitespaceSegmenter;

    #[test]
    fn tokenized_comment_segments() {
        let c = TokenizedComment::new("hao ping!", &WhitespaceSegmenter);
        assert_eq!(c.tokens, vec!["hao", "ping", "!"]);
        assert_eq!(c.text, "hao ping!");
    }

    #[test]
    fn corpus_interns_shared_words_once() {
        let mut c = Corpus::new();
        c.push_text("hao hao ping", &WhitespaceSegmenter);
        c.push_text("ping cha", &WhitespaceSegmenter);
        assert_eq!(c.len(), 2);
        assert_eq!(c.vocab().len(), 3);
        assert_eq!(c.token_count(), 5);
        // "ping" in both sentences maps to the same id.
        let s = c.sentences();
        assert_eq!(s[0][2], s[1][0]);
    }

    #[test]
    fn push_texts_matches_serial_push_text() {
        let texts: Vec<String> =
            (0..64).map(|i| format!("hao w{} ping hao cha{}", i % 7, i % 3)).collect();
        let mut serial = Corpus::new();
        for t in &texts {
            serial.push_text(t, &WhitespaceSegmenter);
        }
        for threads in [1usize, 2, 8] {
            let mut par = Corpus::new();
            let p = cats_par::Parallelism { threads, deterministic: true };
            par.push_texts(&texts, &WhitespaceSegmenter, p);
            assert_eq!(par.sentences(), serial.sentences(), "threads={threads}");
            assert_eq!(par.vocab().len(), serial.vocab().len());
        }
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::new();
        assert!(c.is_empty());
        assert_eq!(c.token_count(), 0);
        assert!(c.vocab().is_empty());
    }

    #[test]
    fn push_empty_comment_keeps_sentence() {
        let mut c = Corpus::new();
        c.push_tokens(&[]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.token_count(), 0);
    }
}
