//! Per-comment statistics behind the paper's structural features.
//!
//! Section II-A4 of the paper observes (Figs 2–5) that fraud-item comments
//! are longer, more chaotically organized (higher token entropy), heavier on
//! punctuation, and more repetitive (lower unique-word ratio) than organic
//! comments. The functions here compute those raw statistics for a single
//! segmented comment; `cats-core` aggregates them per item.

use crate::segment::is_punctuation_token;
use std::collections::HashMap;

/// Shannon entropy (bits) of the token frequency distribution of a comment.
///
/// This is the paper's measure of "how chaotically a comment is organized":
/// `-Σ p(t) log2 p(t)` where `p(t)` is the within-comment frequency of
/// token `t`. Empty comments have entropy 0.
///
/// ```
/// use cats_text::stats::token_entropy;
/// let toks: Vec<String> = ["a", "b", "a", "b"].iter().map(|s| s.to_string()).collect();
/// assert!((token_entropy(&toks) - 1.0).abs() < 1e-12);
/// ```
pub fn token_entropy(tokens: &[String]) -> f64 {
    if tokens.is_empty() {
        return 0.0;
    }
    let mut freq: HashMap<&str, u32> = HashMap::new();
    for t in tokens {
        *freq.entry(t.as_str()).or_insert(0) += 1;
    }
    // Sum in sorted count order: entropy depends only on the count
    // multiset, and a deterministic order keeps the result bit-identical
    // across HashMap instances (and therefore across threads).
    let mut counts: Vec<u32> = freq.into_values().collect();
    counts.sort_unstable();
    entropy_of_counts(&counts, tokens.len() as f64)
}

/// `-Σ p log2 p` over a count multiset, reduced in explicit 8-wide lane
/// accumulators with a fixed pairwise fold. The lane a term lands in is a
/// function of its position alone, so the summation order — and therefore
/// the result, to the bit — depends only on the (sorted) count sequence.
fn entropy_of_counts(counts: &[u32], n: f64) -> f64 {
    let mut acc = [0.0f64; 8];
    for (i, &c) in counts.iter().enumerate() {
        let p = f64::from(c) / n;
        acc[i % 8] -= p * p.log2();
    }
    let b0 = acc[0] + acc[4];
    let b1 = acc[1] + acc[5];
    let b2 = acc[2] + acc[6];
    let b3 = acc[3] + acc[7];
    let h = (b0 + b2) + (b1 + b3);
    // -0.0 can appear when the comment is a single repeated token.
    if h == 0.0 {
        0.0
    } else {
        h
    }
}

/// Number of punctuation tokens in a segmented comment.
pub fn punctuation_count(tokens: &[String]) -> usize {
    tokens.iter().filter(|t| is_punctuation_token(t)).count()
}

/// Fraction of a comment's tokens that are punctuation (0 for empty).
pub fn punctuation_ratio(tokens: &[String]) -> f64 {
    if tokens.is_empty() {
        return 0.0;
    }
    punctuation_count(tokens) as f64 / tokens.len() as f64
}

/// Ratio of distinct tokens to total tokens (1 for empty, by convention —
/// an empty comment has no duplication).
pub fn unique_word_ratio(tokens: &[String]) -> f64 {
    if tokens.is_empty() {
        return 1.0;
    }
    let mut seen: HashMap<&str, ()> = HashMap::with_capacity(tokens.len());
    for t in tokens {
        seen.entry(t.as_str()).or_insert(());
    }
    seen.len() as f64 / tokens.len() as f64
}

/// Comment length in characters of the raw (pre-segmentation) text,
/// excluding whitespace. The paper's Fig 4 measures comment length over the
/// raw comment string.
pub fn char_length(text: &str) -> usize {
    text.chars().filter(|c| !c.is_whitespace()).count()
}

/// Comment length in tokens.
pub fn token_length(tokens: &[String]) -> usize {
    tokens.len()
}

/// All single-comment statistics bundled, to avoid re-walking the token
/// slice once per feature in the hot extraction path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommentStats {
    /// Shannon entropy in bits of the token distribution.
    pub entropy: f64,
    /// Count of punctuation tokens.
    pub punctuation: usize,
    /// Punctuation tokens / total tokens.
    pub punctuation_ratio: f64,
    /// Distinct tokens / total tokens.
    pub unique_ratio: f64,
    /// Non-whitespace character count of the raw text.
    pub chars: usize,
    /// Token count.
    pub tokens: usize,
}

impl CommentStats {
    /// Computes every statistic in a single pass over the token slice.
    pub fn compute(text: &str, tokens: &[String]) -> Self {
        let n = tokens.len();
        let mut freq: HashMap<&str, u32> = HashMap::with_capacity(n);
        let mut punct = 0usize;
        for t in tokens {
            if is_punctuation_token(t) {
                punct += 1;
            }
            *freq.entry(t.as_str()).or_insert(0) += 1;
        }
        let entropy = if n == 0 {
            0.0
        } else {
            // Deterministic order (see `token_entropy`); shares the 8-wide
            // chunked reduction so bundle and individual paths agree bitwise.
            let mut counts: Vec<u32> = freq.values().copied().collect();
            counts.sort_unstable();
            entropy_of_counts(&counts, n as f64)
        };
        Self {
            entropy,
            punctuation: punct,
            punctuation_ratio: if n == 0 { 0.0 } else { punct as f64 / n as f64 },
            unique_ratio: if n == 0 { 1.0 } else { freq.len() as f64 / n as f64 },
            chars: char_length(text),
            tokens: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn entropy_of_uniform_distribution() {
        // 4 distinct tokens, each once: entropy = log2(4) = 2 bits.
        assert!((token_entropy(&toks(&["a", "b", "c", "d"])) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_single_repeated_token_is_zero() {
        let e = token_entropy(&toks(&["a", "a", "a"]));
        assert_eq!(e, 0.0);
        assert!(e.is_sign_positive(), "no -0.0");
    }

    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(token_entropy(&[]), 0.0);
    }

    #[test]
    fn entropy_bounded_by_log_len() {
        let t = toks(&["a", "b", "a", "c", "d", "d", "e"]);
        let e = token_entropy(&t);
        assert!(e > 0.0);
        assert!(e <= (t.len() as f64).log2() + 1e-12);
    }

    #[test]
    fn punctuation_counting() {
        let t = toks(&["good", "!", "!", "bad", "?"]);
        assert_eq!(punctuation_count(&t), 3);
        assert!((punctuation_ratio(&t) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn punctuation_ratio_empty_is_zero() {
        assert_eq!(punctuation_ratio(&[]), 0.0);
    }

    #[test]
    fn unique_ratio_all_distinct_is_one() {
        assert_eq!(unique_word_ratio(&toks(&["a", "b", "c"])), 1.0);
    }

    #[test]
    fn unique_ratio_with_duplicates() {
        assert!((unique_word_ratio(&toks(&["a", "a", "b", "b"])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unique_ratio_empty_is_one() {
        assert_eq!(unique_word_ratio(&[]), 1.0);
    }

    #[test]
    fn char_length_ignores_whitespace() {
        assert_eq!(char_length("ab cd\te"), 5);
        assert_eq!(char_length(""), 0);
        assert_eq!(char_length("很好 的"), 3);
    }

    #[test]
    fn bundle_matches_individual_functions() {
        let text = "hao ping ! hao";
        let t = toks(&["hao", "ping", "!", "hao"]);
        let s = CommentStats::compute(text, &t);
        assert!((s.entropy - token_entropy(&t)).abs() < 1e-12);
        assert_eq!(s.punctuation, punctuation_count(&t));
        assert!((s.punctuation_ratio - punctuation_ratio(&t)).abs() < 1e-12);
        assert!((s.unique_ratio - unique_word_ratio(&t)).abs() < 1e-12);
        assert_eq!(s.chars, char_length(text));
        assert_eq!(s.tokens, 4);
    }

    #[test]
    fn bundle_on_empty_comment() {
        let s = CommentStats::compute("", &[]);
        assert_eq!(s.entropy, 0.0);
        assert_eq!(s.punctuation, 0);
        assert_eq!(s.punctuation_ratio, 0.0);
        assert_eq!(s.unique_ratio, 1.0);
        assert_eq!(s.chars, 0);
        assert_eq!(s.tokens, 0);
    }
}
