//! # cats-text — text substrate for the CATS reproduction
//!
//! CATS (ICDE 2019) derives every detection feature from the *comments* of an
//! e-commerce item. This crate provides the text machinery those features are
//! built on:
//!
//! * [`Vocab`] — an interning vocabulary mapping words to dense `u32` ids,
//!   used by the word2vec trainer and the sentiment model.
//! * [`segment`] — word segmentation. The paper segments Chinese comments
//!   into word sets; the [`segment::Segmenter`] trait has two
//!   implementations: [`WhitespaceSegmenter`] for delimited text and
//!   [`DictSegmenter`] (bidirectional maximum matching) for
//!   delimiter-free, Chinese-style text.
//! * [`stats`] — per-comment statistics (token entropy, punctuation counts,
//!   unique-word ratio, lengths) behind the paper's structural features
//!   (Figs 2–5).
//! * [`ngram`] — 2-gram (bigram) iteration and the positive-bigram predicate
//!   defining the paper's set *G*.
//! * [`lexicon`] — the positive set *P* and negative set *N* (Table I) and
//!   counting helpers for the word-level features.
//! * [`corpus`] — tokenized comment containers shared by the embedding and
//!   sentiment crates.
//!
//! Everything here is deterministic and allocation-conscious: hot paths take
//! `&[...]` slices and avoid intermediate `String`s.

pub mod corpus;
pub mod dictseg;
pub mod lexicon;
pub mod ngram;
pub mod segment;
pub mod stats;
pub mod token;

pub use corpus::{Corpus, TokenizedComment};
pub use dictseg::DictSegmenter;
pub use lexicon::Lexicon;
pub use segment::{Segmenter, WhitespaceSegmenter};
pub use token::{TokenId, Vocab};
