//! Bigrams and the positive-2-gram set *G* (paper §II-A2).
//!
//! The paper defines *G* as the set of 2-grams `(Wi, Wj)` in which at least
//! one word belongs to the positive set *P*, and derives two features from
//! it: `averageNgramNumber` (average count of positive bigrams per comment)
//! and `averageNgramRatio` (that count normalized by the number of bigram
//! positions, `|Cᵢʲ| − 1`). Since membership in *G* is a predicate over the
//! lexicon, we never enumerate *G*; [`positive_bigram_count`] streams through
//! a comment's adjacent pairs.

use crate::lexicon::Lexicon;

/// Iterates adjacent token pairs of a segmented comment.
pub fn bigrams(tokens: &[String]) -> impl Iterator<Item = (&str, &str)> + '_ {
    tokens.windows(2).map(|w| (w[0].as_str(), w[1].as_str()))
}

/// Number of bigram positions of a comment: `max(len − 1, 0)`.
#[inline]
pub fn bigram_positions(tokens: &[String]) -> usize {
    tokens.len().saturating_sub(1)
}

/// Counts bigrams of `tokens` that are in *G*, i.e. whose first or second
/// word is in the positive set of `lexicon`.
///
/// ```
/// use cats_text::{Lexicon, ngram::positive_bigram_count};
/// let lex = Lexicon::new(["hao".to_string()], []);
/// let toks: Vec<String> = ["hen", "hao", "yong"].iter().map(|s| s.to_string()).collect();
/// // ("hen","hao") and ("hao","yong") both contain "hao".
/// assert_eq!(positive_bigram_count(&toks, &lex), 2);
/// ```
pub fn positive_bigram_count(tokens: &[String], lexicon: &Lexicon) -> usize {
    bigrams(tokens).filter(|(a, b)| lexicon.is_positive(a) || lexicon.is_positive(b)).count()
}

/// Fraction of a comment's bigram positions that are positive bigrams
/// (0 when the comment has fewer than two tokens).
pub fn positive_bigram_ratio(tokens: &[String], lexicon: &Lexicon) -> f64 {
    let n = bigram_positions(tokens);
    if n == 0 {
        return 0.0;
    }
    positive_bigram_count(tokens, lexicon) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ws: &[&str]) -> Vec<String> {
        ws.iter().map(|s| s.to_string()).collect()
    }

    fn lex() -> Lexicon {
        Lexicon::new(["hao".to_string(), "zan".to_string()], ["cha".to_string()])
    }

    #[test]
    fn bigram_iteration() {
        let t = toks(&["a", "b", "c"]);
        let bs: Vec<_> = bigrams(&t).collect();
        assert_eq!(bs, vec![("a", "b"), ("b", "c")]);
    }

    #[test]
    fn bigrams_of_short_comments_are_empty() {
        assert_eq!(bigrams(&toks(&["a"])).count(), 0);
        assert_eq!(bigrams(&[]).count(), 0);
        assert_eq!(bigram_positions(&toks(&["a"])), 0);
        assert_eq!(bigram_positions(&[]), 0);
    }

    #[test]
    fn counts_bigrams_with_either_side_positive() {
        let t = toks(&["hen", "hao", "zan", "x"]);
        // (hen,hao) yes, (hao,zan) yes, (zan,x) yes
        assert_eq!(positive_bigram_count(&t, &lex()), 3);
    }

    #[test]
    fn negative_words_do_not_count() {
        let t = toks(&["cha", "x", "cha"]);
        assert_eq!(positive_bigram_count(&t, &lex()), 0);
        assert_eq!(positive_bigram_ratio(&t, &lex()), 0.0);
    }

    #[test]
    fn ratio_normalizes_by_positions() {
        let t = toks(&["hao", "x", "y"]); // (hao,x) positive, (x,y) not
        assert!((positive_bigram_ratio(&t, &lex()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_of_singleton_is_zero() {
        assert_eq!(positive_bigram_ratio(&toks(&["hao"]), &lex()), 0.0);
    }

    #[test]
    fn ratio_never_exceeds_one() {
        let t = toks(&["hao", "hao", "hao"]);
        assert_eq!(positive_bigram_ratio(&t, &lex()), 1.0);
    }
}
