//! Interning vocabulary.
//!
//! Word2vec and the sentiment model operate over dense integer token ids
//! rather than strings. [`Vocab`] interns words to [`TokenId`]s and tracks
//! occurrence counts, which the embedding crate uses for its unigram
//! negative-sampling table and frequency subsampling.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned word.
///
/// Ids are assigned in first-seen order starting at zero, so a `TokenId` is
/// always a valid index into [`Vocab`]-sized side tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional word ⇄ id map with occurrence counts.
///
/// ```
/// use cats_text::Vocab;
/// let mut v = Vocab::new();
/// let a = v.intern("haoping");
/// let b = v.intern("chaping");
/// assert_ne!(a, b);
/// assert_eq!(v.intern("haoping"), a); // idempotent
/// assert_eq!(v.word(a), Some("haoping"));
/// assert_eq!(v.count(a), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocab {
    words: Vec<String>,
    counts: Vec<u64>,
    index: HashMap<String, TokenId>,
}

impl Vocab {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `word`, incrementing its occurrence count, and returns its id.
    pub fn intern(&mut self, word: &str) -> TokenId {
        if let Some(&id) = self.index.get(word) {
            self.counts[id.index()] += 1;
            return id;
        }
        let id = TokenId(self.words.len() as u32);
        self.words.push(word.to_owned());
        self.counts.push(1);
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Interns every token of a pre-segmented comment.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TokenId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Rebuilds a vocabulary from `(word, count)` entries in id order —
    /// the persistence decode path, inverse of [`Vocab::iter`]. Entries
    /// are assigned dense ids in input order with the given counts taken
    /// verbatim, so `Vocab::from_entries(v.iter().map(|(_, w, c)|
    /// (w.to_owned(), c)))` reproduces `v` exactly.
    ///
    /// Returns an error on a duplicate word: two entries can't share an id.
    pub fn from_entries<I: IntoIterator<Item = (String, u64)>>(entries: I) -> Result<Self, String> {
        let mut v = Self::new();
        for (word, count) in entries {
            let id = TokenId(v.words.len() as u32);
            if v.index.insert(word.clone(), id).is_some() {
                return Err(format!("duplicate vocabulary word {word:?}"));
            }
            v.words.push(word);
            v.counts.push(count);
        }
        Ok(v)
    }

    /// Looks up a word without interning it.
    pub fn id(&self, word: &str) -> Option<TokenId> {
        self.index.get(word).copied()
    }

    /// The word behind `id`, if `id` was produced by this vocabulary.
    pub fn word(&self, id: TokenId) -> Option<&str> {
        self.words.get(id.index()).map(String::as_str)
    }

    /// Occurrence count of `id` (zero for foreign ids).
    pub fn count(&self, id: TokenId) -> u64 {
        self.counts.get(id.index()).copied().unwrap_or(0)
    }

    /// Number of distinct interned words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether no word has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Total token occurrences seen (the corpus length in tokens).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(id, word, count)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TokenId, &str, u64)> + '_ {
        self.words
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(i, (w, &c))| (TokenId(i as u32), w.as_str(), c))
    }

    /// Ids of the `k` most frequent words, ties broken by id order.
    pub fn top_k(&self, k: usize) -> Vec<TokenId> {
        let mut ids: Vec<TokenId> = (0..self.words.len() as u32).map(TokenId).collect();
        ids.sort_by(|a, b| self.counts[b.index()].cmp(&self.counts[a.index()]).then(a.0.cmp(&b.0)));
        ids.truncate(k);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_sequential_ids() {
        let mut v = Vocab::new();
        for (i, w) in ["a", "b", "c", "d"].iter().enumerate() {
            assert_eq!(v.intern(w), TokenId(i as u32));
        }
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn intern_is_idempotent_and_counts() {
        let mut v = Vocab::new();
        let a = v.intern("x");
        v.intern("x");
        v.intern("x");
        assert_eq!(v.count(a), 3);
        assert_eq!(v.len(), 1);
        assert_eq!(v.total_count(), 3);
    }

    #[test]
    fn lookup_without_interning() {
        let mut v = Vocab::new();
        v.intern("x");
        assert!(v.id("x").is_some());
        assert!(v.id("y").is_none());
        assert_eq!(v.count(TokenId(99)), 0);
        assert_eq!(v.word(TokenId(99)), None);
    }

    #[test]
    fn top_k_orders_by_count_then_id() {
        let mut v = Vocab::new();
        for w in ["a", "b", "b", "c", "c", "c", "d"] {
            v.intern(w);
        }
        let top = v.top_k(2);
        assert_eq!(v.word(top[0]), Some("c"));
        assert_eq!(v.word(top[1]), Some("b"));
        // k larger than vocab is clamped
        assert_eq!(v.top_k(10).len(), 4);
        // tie between a and d broken by id order
        let all = v.top_k(4);
        assert_eq!(v.word(all[2]), Some("a"));
        assert_eq!(v.word(all[3]), Some("d"));
    }

    #[test]
    fn from_entries_is_inverse_of_iter() {
        let mut v = Vocab::new();
        for w in ["a", "b", "b", "c", "a", "a"] {
            v.intern(w);
        }
        let rebuilt = Vocab::from_entries(v.iter().map(|(_, w, c)| (w.to_owned(), c))).unwrap();
        assert_eq!(rebuilt.len(), v.len());
        for (id, w, c) in v.iter() {
            assert_eq!(rebuilt.id(w), Some(id));
            assert_eq!(rebuilt.count(id), c);
            assert_eq!(rebuilt.word(id), Some(w));
        }
        assert!(Vocab::from_entries([("x".to_string(), 1), ("x".to_string(), 2)]).is_err());
    }

    #[test]
    fn intern_all_roundtrips() {
        let mut v = Vocab::new();
        let toks: Vec<String> = ["p", "q", "p"].iter().map(|s| s.to_string()).collect();
        let ids = v.intern_all(&toks);
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
    }
}
