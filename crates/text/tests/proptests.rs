//! Property-based tests for the text substrate.

use cats_text::{ngram, stats, Lexicon, Segmenter, Vocab, WhitespaceSegmenter};
use proptest::prelude::*;

/// Strategy: short lowercase pseudo-words.
fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

/// Strategy: a comment as a token list.
fn tokens() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(word(), 0..40)
}

proptest! {
    #[test]
    fn entropy_is_bounded_by_log2_len(toks in tokens()) {
        let h = stats::token_entropy(&toks);
        prop_assert!(h >= 0.0);
        let bound = if toks.is_empty() { 0.0 } else { (toks.len() as f64).log2() };
        prop_assert!(h <= bound + 1e-9, "h={h} bound={bound}");
    }

    #[test]
    fn entropy_invariant_under_permutation(mut toks in tokens()) {
        let h1 = stats::token_entropy(&toks);
        toks.reverse();
        let h2 = stats::token_entropy(&toks);
        prop_assert!((h1 - h2).abs() < 1e-12);
    }

    #[test]
    fn unique_ratio_in_unit_interval(toks in tokens()) {
        let r = stats::unique_word_ratio(&toks);
        prop_assert!((0.0..=1.0).contains(&r));
        // all-distinct iff ratio == 1 (for non-empty)
        if !toks.is_empty() {
            let mut sorted = toks.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted.len() == toks.len(), (r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn punctuation_ratio_consistent_with_count(toks in tokens()) {
        let c = stats::punctuation_count(&toks);
        let r = stats::punctuation_ratio(&toks);
        if toks.is_empty() {
            prop_assert_eq!(r, 0.0);
        } else {
            prop_assert!((r - c as f64 / toks.len() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn segmenter_output_has_no_whitespace_and_covers_input(text in "[a-z !，。?]{0,60}") {
        let toks = WhitespaceSegmenter.segment(&text);
        for t in &toks {
            prop_assert!(!t.is_empty());
            prop_assert!(!t.chars().any(char::is_whitespace), "{t:?}");
        }
        // Non-whitespace chars are preserved in order.
        let rejoined: String = toks.concat();
        let expected: String = text.chars().filter(|c| !c.is_whitespace()).collect();
        prop_assert_eq!(rejoined, expected);
    }

    #[test]
    fn segmentation_is_idempotent_on_its_own_output(text in "[a-z !，。?]{0,60}") {
        let seg = WhitespaceSegmenter;
        let once = seg.segment(&text);
        let again = seg.segment(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn vocab_intern_roundtrips(words in prop::collection::vec(word(), 1..50)) {
        let mut v = Vocab::new();
        let ids: Vec<_> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.word(*id), Some(w.as_str()));
            prop_assert_eq!(v.id(w), Some(*id));
        }
        prop_assert_eq!(v.total_count(), words.len() as u64);
    }

    #[test]
    fn bigram_count_bounded_by_positions(toks in tokens(), pos_words in prop::collection::vec(word(), 0..5)) {
        let lex = Lexicon::new(pos_words, Vec::<String>::new());
        let count = ngram::positive_bigram_count(&toks, &lex);
        prop_assert!(count <= ngram::bigram_positions(&toks));
        let ratio = ngram::positive_bigram_ratio(&toks, &lex);
        prop_assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn lexicon_counts_additive_under_concat(a in tokens(), b in tokens(), pos in prop::collection::vec(word(), 1..5)) {
        let lex = Lexicon::new(pos, Vec::<String>::new());
        let mut ab = a.clone();
        ab.extend(b.clone());
        prop_assert_eq!(
            lex.positive_count(&ab),
            lex.positive_count(&a) + lex.positive_count(&b)
        );
    }
}

mod dictseg_props {
    use cats_text::{DictSegmenter, Segmenter};
    use proptest::prelude::*;

    fn vocab() -> impl Strategy<Value = Vec<String>> {
        prop::collection::vec("[a-d]{1,4}", 1..12)
    }

    proptest! {
        #[test]
        fn segmentation_covers_input(vocab in vocab(), text in "[a-e]{0,30}") {
            let seg = DictSegmenter::new(vocab);
            let toks = seg.segment(&text);
            let rejoined: String = toks.concat();
            prop_assert_eq!(rejoined, text);
        }

        #[test]
        fn every_token_is_dict_word_or_single_char(vocab in vocab(), text in "[a-e]{0,30}") {
            let words: std::collections::HashSet<String> = vocab.iter().cloned().collect();
            let seg = DictSegmenter::new(vocab);
            for tok in seg.segment(&text) {
                prop_assert!(
                    words.contains(&tok) || tok.chars().count() == 1,
                    "token {tok:?} neither dict word nor single char"
                );
            }
        }

        #[test]
        fn known_sentences_never_oversegment(vocab in vocab(), idx in prop::collection::vec(any::<prop::sample::Index>(), 1..8)) {
            // A sentence of dictionary words re-segments into at most as
            // many tokens as the original sentence: maximum matching may
            // re-analyse boundaries ("a"+"ab" → "aa"+"b") but it cannot do
            // worse than the original segmentation plus char fallbacks,
            // and bidirectional selection keeps the shorter pass.
            let seg = DictSegmenter::new(vocab.clone());
            let sentence: Vec<&String> = idx.iter().map(|i| i.get(&vocab)).collect();
            let unspaced: String = sentence.iter().map(|w| w.as_str()).collect();
            let toks = seg.segment(&unspaced);
            prop_assert_eq!(toks.concat(), unspaced.clone());
            // every multi-char token is a dictionary word
            let words: std::collections::HashSet<&str> = vocab.iter().map(String::as_str).collect();
            for t in &toks {
                prop_assert!(
                    t.chars().count() == 1 || words.contains(t.as_str()),
                    "{t:?} multi-char but not in dict"
                );
            }
        }
    }
}
