//! Observability determinism (PR 3 acceptance).
//!
//! The metrics registry and span machinery must never make pipeline
//! runs less reproducible than they already are. With `deterministic:
//! true` parallelism and the simulated observer clock, two identical
//! runs must produce **byte-identical** `RunProfile` JSON once the one
//! wall-clock field is stripped. A second test proves the crawler's
//! registry migration: `cats.collector.crawl.*` deltas equal the public
//! `CrawlStats` field-for-field on a fault-injected crawl.
//!
//! The registry and observer slot are process-global, so the tests in
//! this file serialize on a mutex (other integration-test files run as
//! separate processes and are unaffected).

use cats::collector::{Collector, CollectorConfig, FaultPlan, PublicSite, SiteConfig};
use cats::core::features::extract_batch;
use cats::core::{ItemComments, SemanticAnalyzer, SemanticConfig, N_FEATURES};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats::ml::{Classifier, Dataset};
use cats::obs;
use cats::par::Parallelism;
use std::sync::{Arc, Mutex};

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One small but representative pipeline run — semantic training (with
/// word2vec epochs), batch feature extraction, and a GBT fit — under a
/// [`obs::StageTimer`], fully serial and deterministic.
fn run_pipeline() -> obs::RunProfile {
    let timer = obs::StageTimer::start("determinism-check");
    let par = Parallelism { threads: 1, deterministic: true };

    let texts: Vec<String> = (0..300)
        .map(|i| {
            let v = i % 5;
            format!("hao{v} zan{v} item fast ship hao{v} cha{} man", i % 3)
        })
        .collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let analyzer = SemanticAnalyzer::train(
        &refs,
        &["hao0".to_string()],
        &["cha0".to_string()],
        &["hao0 zan0 hao1", "zan1 hao2"],
        &["cha0 man cha1", "man cha2"],
        SemanticConfig {
            word2vec: Word2VecConfig {
                dim: 8,
                epochs: 2,
                min_count: 1,
                parallelism: par,
                ..Word2VecConfig::default()
            },
            expansion: ExpansionConfig::default(),
            parallelism: par,
        },
    );

    let items: Vec<ItemComments> = (0..40)
        .map(|i| ItemComments::from_texts([format!("hao{} zan0 item", i % 5).as_str()]))
        .collect();
    let rows = extract_batch(&items, &analyzer, 1);
    assert_eq!(rows.len(), items.len());

    let mut data = Dataset::new(N_FEATURES);
    for (i, r) in rows.iter().enumerate() {
        data.push(r.as_slice(), (i % 2) as u8);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig { parallelism: par, ..GbtConfig::default() });
    gbt.fit(&data);

    timer.finish()
}

#[test]
fn deterministic_runs_produce_byte_identical_profiles() {
    let _g = OBS_LOCK.lock().unwrap();
    obs::set_observer(Arc::new(obs::SimObserver::new()));
    let a = run_pipeline();
    let b = run_pipeline();
    obs::set_observer(Arc::new(obs::WallObserver::new()));

    for stage in ["cats.core.train", "cats.embedding.w2v.epoch", "cats.ml.gbt.round"] {
        assert!(a.stage(stage).is_some(), "missing stage {stage}");
    }
    assert!(a.counter("cats.embedding.w2v.pairs") > 0, "w2v pair counter recorded");
    assert_eq!(
        a.to_json_stripped(),
        b.to_json_stripped(),
        "identical runs must serialize identically modulo wall clock"
    );
}

#[test]
fn crawler_stats_match_registry_counters() {
    let _g = OBS_LOCK.lock().unwrap();
    let platform = cats::platform::datasets::e_platform(0.002, 77);
    let site = PublicSite::new(
        &platform,
        SiteConfig { faults: FaultPlan::at_intensity(0.6), ..SiteConfig::default() },
    );
    let base = obs::global().snapshot();
    let mut collector = Collector::new(CollectorConfig::default());
    let _data = collector.crawl(&site);
    let stats = collector.stats();
    let reg = obs::global().snapshot().diff(&base);

    assert!(stats.pages_fetched > 0);
    assert!(
        stats.transient_errors + stats.rate_limited + stats.outage_errors > 0,
        "faulted site should leave fault footprints: {stats:?}"
    );
    for (name, want) in [
        ("pages_fetched", stats.pages_fetched),
        ("transient_errors", stats.transient_errors),
        ("rate_limited", stats.rate_limited),
        ("outage_errors", stats.outage_errors),
        ("pages_abandoned", stats.pages_abandoned),
        ("malformed_records", stats.malformed_records),
        ("duplicate_records", stats.duplicate_records),
        ("poisoned_records", stats.poisoned_records),
        ("backoff_waits", stats.backoff_waits),
        ("backoff_wait_secs", stats.backoff_wait_secs),
        ("breaker_opens", stats.breaker_opens),
        ("breaker_wait_secs", stats.breaker_wait_secs),
        ("breaker_give_ups", stats.breaker_give_ups),
        ("truncated_resources", stats.truncated_resources),
        ("stalled_pages", stats.stalled_pages),
        ("stall_secs", stats.stall_secs),
        ("sim_clock_secs", stats.sim_clock_secs),
    ] {
        let got = reg.counter(&format!("cats.collector.crawl.{name}"));
        assert_eq!(got, want, "registry mirror diverged for {name}");
    }
}
