//! Integration: the delimiter-free (Chinese-style) path — comments with
//! their whitespace stripped, segmented by the dictionary-based
//! maximum-matching segmenter, must yield the same detection pipeline
//! behaviour as the delimited path.

use cats::core::{features, ItemComments, SemanticAnalyzer};
use cats::platform::datasets;
use cats::sentiment::SentimentModel;
use cats::text::{DictSegmenter, Lexicon, Segmenter, WhitespaceSegmenter};

/// A dictionary segmenter covering the platform's full vocabulary.
fn dict_for(platform: &cats::platform::Platform) -> DictSegmenter {
    let lex = platform.lexicon();
    DictSegmenter::new(
        lex.positive()
            .iter()
            .chain(lex.negative())
            .chain(lex.neutral())
            .chain(lex.function())
            .cloned()
            // the template intensifiers appear in comments without being
            // vocabulary members of a class
            .chain(["hen", "zhen", "feichang", "jiushi", "queshi"].into_iter().map(String::from)),
    )
}

fn strip_spaces(text: &str) -> String {
    text.chars().filter(|c| !c.is_whitespace()).collect()
}

#[test]
fn dict_segmentation_recovers_spaced_tokenization() {
    let platform = datasets::d0(0.002, 71);
    let dict = dict_for(&platform);
    let ws = WhitespaceSegmenter;

    let mut comments = 0usize;
    let mut exact = 0usize;
    for item in platform.items().iter().take(40) {
        for c in &item.comments {
            let spaced = ws.segment(&c.content);
            let unspaced = dict.segment(&strip_spaces(&c.content));
            comments += 1;
            if spaced == unspaced {
                exact += 1;
            }
        }
    }
    assert!(comments > 50, "fixture too small: {comments}");
    // Maximum matching over a complete dictionary with Zipfian word reuse
    // is not always unique, but the overwhelming majority of comments must
    // re-segment exactly.
    assert!(exact * 10 >= comments * 9, "only {exact}/{comments} comments re-segmented exactly");
}

#[test]
fn features_agree_between_spaced_and_unspaced_paths() {
    let platform = datasets::d0(0.002, 72);
    let dict = dict_for(&platform);

    // A minimal analyzer (ground-truth lexicon + tiny sentiment model):
    // the comparison only needs both paths to share it.
    let lexicon = Lexicon::new(
        platform.lexicon().positive().to_vec(),
        platform.lexicon().negative().to_vec(),
    );
    let docs = |texts: &[&str]| -> Vec<Vec<String>> {
        texts.iter().map(|t| t.split_whitespace().map(String::from).collect()).collect()
    };
    let sentiment = SentimentModel::train(
        &docs(&["haoping zhide manyi", "bucuo xihuan"]),
        &docs(&["chaping zaogao", "tuihuo buhao"]),
    );
    let analyzer = SemanticAnalyzer::from_parts(lexicon, sentiment);

    // Maximum matching on delimiter-free text is inherently ambiguous at
    // word boundaries (adjacent words can re-analyse into a different
    // dictionary word), so agreement is a population property, not a
    // per-item guarantee: most items must agree on most features.
    let mut checked = 0usize;
    let mut agreeing = 0usize;
    for item in platform.items().iter().take(40) {
        let texts: Vec<&str> = item.comments.iter().map(|c| c.content.as_str()).collect();
        if texts.is_empty() {
            continue;
        }
        let spaced = ItemComments::from_texts(texts.clone());
        let unspaced_texts: Vec<String> = texts.iter().map(|t| strip_spaces(t)).collect();
        let unspaced =
            ItemComments::from_texts_with(unspaced_texts.iter().map(String::as_str), &dict);
        let fa = features::extract(&spaced, &analyzer);
        let fb = features::extract(&unspaced, &analyzer);
        let close = fa
            .as_slice()
            .iter()
            .zip(fb.as_slice())
            .filter(|(a, b)| {
                let denom = a.abs().max(1.0);
                ((*a - *b) / denom).abs() < 0.05
            })
            .count();
        checked += 1;
        if close >= 9 {
            agreeing += 1;
        }
    }
    assert!(checked > 10, "too few items checked");
    assert!(
        agreeing * 10 >= checked * 8,
        "only {agreeing}/{checked} items agree on ≥9/11 features"
    );
}
