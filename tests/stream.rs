//! Integration tests for the streaming velocity lane (`cats-stream`):
//! ring eviction at exact boundary ticks, out-of-order arrivals within
//! the trace's bounded skew, empty-window entropy (no NaNs), idle-item
//! sweeps through a fitted pipeline, and bit-identical verdict streams
//! at 1, 2 and 8 extraction threads.

use cats_core::{CatsPipeline, ItemComments, PipelineConfig, StreamVerdict};
use cats_platform::{datasets, TemporalTrace, TimedComment, TraceConfig};
use cats_stream::{mix_user, CommentEvent, IngestOutcome, Ring, StreamConfig, StreamEngine};

fn fraud_item(i: usize) -> ItemComments {
    ItemComments::from_texts([
        format!("hao0 hao0 zan1 ! hao0 bang2 w{i} ， hao0 hao0 zan0 hao1 hao1").as_str(),
        "hen hao0 zan2 ！ hao2 hao0 hao0 bang0 hao0",
    ])
}

fn normal_item(i: usize) -> ItemComments {
    ItemComments::from_texts([format!("shu hao0 kan w{i}").as_str(), "dongxi cha0 le dian"])
}

/// A small fitted pipeline (the `cats-serve` test recipe): real training
/// on a synthetic corpus, cheap enough to run per-test.
fn trained() -> CatsPipeline {
    let mut texts = Vec::new();
    for i in 0..250 {
        let v = i % 3;
        texts.push(format!("hao{v} zan{v} hao{v} bang{v} kuai du"));
        texts.push(format!("cha{v} lan{v} cha{v} huai{v} man du"));
        texts.push("he zi kuai di shou dao".to_string());
    }
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let mut training = Vec::new();
    for i in 0..30 {
        training.push(cats_core::pipeline::LabeledItem { comments: fraud_item(i), label: 1 });
        training.push(cats_core::pipeline::LabeledItem { comments: normal_item(i), label: 0 });
    }
    CatsPipeline::train(
        &refs,
        &["hao0".to_string()],
        &["cha0".to_string()],
        &["hao0 zan0 bang0 hao1", "zan1 hao2 bang1"],
        &["cha0 lan0 huai0", "lan1 cha2 huai2"],
        &training,
        None,
        PipelineConfig::default(),
    )
}

fn event(at_ms: u64, item_id: u64, user_id: u64) -> CommentEvent {
    CommentEvent {
        at_ms,
        item_id,
        user_id,
        sales_volume: 50,
        text: "hao0 zan0 hao0 bang0".to_string(),
    }
}

fn to_event(ev: &TimedComment) -> CommentEvent {
    CommentEvent {
        at_ms: ev.at_ms,
        item_id: ev.item_id,
        user_id: ev.user_id as u64,
        sales_volume: ev.sales_volume,
        text: ev.content.clone(),
    }
}

/// Replays a trace through a fresh engine, flushing on the virtual
/// clock — the same driver loop `exp_stream` uses.
fn replay(trace: &TemporalTrace, pipeline: &CatsPipeline, threads: usize) -> Vec<StreamVerdict> {
    let mut engine = StreamEngine::new(StreamConfig { threads, ..StreamConfig::default() });
    let mut verdicts = Vec::new();
    for ev in &trace.events {
        engine.ingest(&to_event(ev));
        verdicts.extend(engine.maybe_flush(pipeline));
    }
    verdicts.extend(engine.flush(pipeline));
    verdicts
}

#[test]
fn ring_evicts_at_exact_boundary_tick() {
    // 10 buckets of 1 s: the window covers (head-10, head] in bucket
    // units, so an event in bucket 0 survives until head reaches 10.
    let mut ring = Ring::new(1_000, 10);
    assert!(ring.record(0, mix_user(1), None));
    ring.advance_to(9_999); // head = bucket 9: one tick before the edge
    assert_eq!(ring.stats().count, 1, "event must survive to the last covered tick");
    ring.advance_to(10_000); // head = bucket 10: the exact boundary
    assert_eq!(ring.stats().count, 0, "boundary tick must evict bucket 0");
    // A late record aimed at the evicted bucket is rejected; the first
    // still-covered bucket is accepted.
    assert!(!ring.record(0, mix_user(2), None));
    assert!(ring.record(1_000, mix_user(3), None));
    assert_eq!(ring.stats().count, 1);
}

#[test]
fn out_of_order_arrivals_within_bounded_skew_are_accepted() {
    let mut engine = StreamEngine::new(StreamConfig::default());
    assert_eq!(engine.ingest(&event(60_000, 1, 1)), IngestOutcome::Accepted);
    // Delayed delivery 2 s behind the watermark — the trace generator's
    // max skew — must land, and the watermark must not regress.
    assert_eq!(engine.ingest(&event(58_000, 1, 2)), IngestOutcome::Accepted);
    assert_eq!(engine.late_dropped(), 0);
    assert_eq!(engine.watermark_ms(), 60_000);

    // A whole seeded trace with bounded skew sheds nothing.
    let platform = datasets::d0(0.001, 0xBEEF);
    let trace = TemporalTrace::from_platform(
        &platform,
        &TraceConfig { seed: 0xBEEF, ..Default::default() },
    );
    assert!(!trace.is_empty());
    let mut engine = StreamEngine::new(StreamConfig::default());
    for ev in &trace.events {
        assert_eq!(engine.ingest(&to_event(ev)), IngestOutcome::Accepted);
    }
    assert_eq!(engine.late_dropped(), 0);
    assert_eq!(engine.events(), trace.len() as u64);
}

#[test]
fn empty_window_stats_are_zero_not_nan() {
    // A fresh ring reports zeros.
    let ring = Ring::new(3_000, 10);
    let s = ring.stats();
    assert_eq!((s.count, s.distinct_est, s.gap_entropy), (0, 0.0, 0.0));

    // So does one whose entire contents aged out.
    let mut ring = Ring::new(3_000, 10);
    ring.record(0, mix_user(1), None);
    ring.record(100, mix_user(2), Some(100));
    ring.record(2_000, mix_user(3), Some(1_900));
    ring.advance_to(1_000_000);
    let s = ring.stats();
    assert_eq!(s.count, 0);
    assert!(s.distinct_est == 0.0 && s.gap_entropy == 0.0);

    // And the engine's velocity row over a drained window is finite.
    let mut engine = StreamEngine::new(StreamConfig::default());
    engine.ingest(&event(0, 1, 1));
    engine.ingest(&event(400_000, 1, 2)); // old comment falls out of the window
    let slices = engine.drain_window_slices();
    assert_eq!(slices.len(), 1);
    assert!(slices[0].velocity.is_finite());
}

#[test]
fn idle_items_are_swept_at_flush() {
    let pipeline = trained();
    let mut engine = StreamEngine::new(StreamConfig::default());
    engine.ingest(&event(1_000, 7, 1));
    // Far-future activity on another item pushes the virtual clock past
    // item 7's idle horizon (default 600 s), so the flush sweeps it
    // before scoring: one verdict, one resident item.
    engine.ingest(&event(1_000_000, 8, 2));
    assert_eq!(engine.resident_items(), 2);
    let verdicts = engine.flush(&pipeline);
    assert_eq!(verdicts.len(), 1);
    assert_eq!(verdicts[0].item_id, 8);
    assert_eq!(engine.resident_items(), 1);
}

#[test]
fn verdict_stream_is_bit_identical_across_thread_counts() {
    let pipeline = trained();
    let platform = datasets::d0(0.001, 0x51DE);
    let trace = TemporalTrace::from_platform(
        &platform,
        &TraceConfig { seed: 0x51DE, ..Default::default() },
    );
    let reference = replay(&trace, &pipeline, 1);
    assert!(!reference.is_empty(), "trace must produce verdicts");
    for threads in [2usize, 8] {
        let run = replay(&trace, &pipeline, threads);
        assert_eq!(reference.len(), run.len(), "verdict count differs at {threads} threads");
        for (a, b) in reference.iter().zip(&run) {
            assert_eq!(a.item_id, b.item_id);
            assert_eq!(a.at_ms, b.at_ms);
            assert_eq!(a.window_comments, b.window_comments);
            assert_eq!(
                a.cats_score.to_bits(),
                b.cats_score.to_bits(),
                "content score diverges at {threads} threads (item {})",
                a.item_id
            );
            assert_eq!(a.velocity_risk.to_bits(), b.velocity_risk.to_bits());
            assert_eq!(a.fused_score.to_bits(), b.fused_score.to_bits());
            assert_eq!(a.is_fraud, b.is_fraud);
        }
    }
}
