//! Integration: the online detection service end to end — concurrent
//! clients over real sockets, model hot-swap under load, and typed
//! backpressure. The serving path must agree bit-for-bit with offline
//! [`CatsPipeline::detect`]: the server is a deployment surface, not a
//! second implementation of the model.

use cats::core::pipeline::PipelineSnapshot;
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats::ml::{Classifier, Dataset};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use cats::serve::{
    BatchConfig, ClientError, ModelSlot, ScoreClient, ScoreItem, ServeConfig, Server,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Expensive one-time setup shared by every test in this binary: a
/// trained snapshot (restored per-test — restores are cheap) plus the
/// scoring items and their expected offline verdicts.
struct Setup {
    snapshot_json: String,
    items: Vec<ScoreItem>,
    expected: Vec<cats::core::DetectionReport>,
}

fn setup() -> &'static Setup {
    static S: OnceLock<Setup> = OnceLock::new();
    S.get_or_init(|| {
        let train = datasets::d0(0.003, 81);
        let corpus: Vec<&str> = train
            .items()
            .iter()
            .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
            .collect();
        let mut rng = StdRng::seed_from_u64(81);
        let pos: Vec<String> = (0..300)
            .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
            .collect();
        let neg: Vec<String> = (0..300)
            .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
            .collect();
        let analyzer = SemanticAnalyzer::train(
            &corpus,
            &train.lexicon().positive_seeds(),
            &train.lexicon().negative_seeds(),
            &pos.iter().map(String::as_str).collect::<Vec<_>>(),
            &neg.iter().map(String::as_str).collect::<Vec<_>>(),
            SemanticConfig {
                word2vec: Word2VecConfig { dim: 24, epochs: 2, ..Word2VecConfig::default() },
                expansion: ExpansionConfig::default(),
                ..SemanticConfig::default()
            },
        );
        let train_items: Vec<ItemComments> = train
            .items()
            .iter()
            .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
            .collect();
        let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
        let rows = cats::core::features::extract_batch(&train_items, &analyzer, 0);
        let mut data = Dataset::new(cats::core::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        gbt.fit(&data);
        let snapshot_json = CatsPipeline::snapshot(analyzer, DetectorConfig::default(), gbt)
            .to_json()
            .expect("snapshot serializes");

        // Score a different platform, like a real deployment would.
        let target = datasets::d0(0.003, 82);
        let items: Vec<ScoreItem> = target
            .items()
            .iter()
            .map(|it| ScoreItem {
                item_id: it.id,
                sales_volume: it.sales_volume,
                comments: it.comments.iter().map(|c| c.content.clone()).collect(),
            })
            .collect();
        let ics: Vec<ItemComments> = items
            .iter()
            .map(|i| ItemComments::from_texts(i.comments.iter().map(String::as_str)))
            .collect();
        let sales: Vec<u64> = items.iter().map(|i| i.sales_volume).collect();
        let expected = restore(&snapshot_json).detect(&ics, &sales);
        assert_eq!(expected.len(), items.len());
        Setup { snapshot_json, items, expected }
    })
}

fn restore(json: &str) -> CatsPipeline {
    CatsPipeline::restore(PipelineSnapshot::from_json(json).expect("snapshot parses"))
}

fn start(batch: BatchConfig) -> (Server, Arc<ModelSlot>) {
    let slot = Arc::new(ModelSlot::new(restore(&setup().snapshot_json)));
    let server = Server::start(
        slot.clone(),
        ServeConfig { addr: "127.0.0.1:0".into(), batch, ..ServeConfig::default() },
    )
    .expect("bind test server");
    (server, slot)
}

/// Asserts a server response against the offline expectation for the
/// item slice starting at `offset`.
fn assert_matches_expected(verdicts: &[cats::serve::ScoreVerdict], offset: usize) {
    let s = setup();
    for (k, v) in verdicts.iter().enumerate() {
        let exp = &s.expected[offset + k];
        assert_eq!(v.item_id, s.items[offset + k].item_id);
        assert_eq!(
            v.score.to_bits(),
            exp.score.to_bits(),
            "item {} must score bit-identically to offline detect",
            v.item_id
        );
        assert_eq!(v.is_fraud, exp.is_fraud);
        assert_eq!(v.filter, cats::serve::wire::filter_str(exp.filter));
    }
}

#[test]
fn concurrent_clients_get_bit_identical_scores() {
    let (server, _slot) = start(BatchConfig::default());
    let addr = server.addr().to_string();
    let n = setup().items.len();
    let chunk = n.div_ceil(4).max(1);
    let handles: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let s = setup();
                let lo = (c * chunk).min(n);
                let hi = ((c + 1) * chunk).min(n);
                let client = ScoreClient::new(addr);
                let resp = client.score(&s.items[lo..hi]).expect("score succeeds");
                assert_eq!(resp.verdicts.len(), hi - lo);
                assert_matches_expected(&resp.verdicts, lo);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
}

#[test]
fn hot_swap_under_load_drops_nothing_and_scores_stay_coherent() {
    // Aggressive batching so swaps land between and inside coalescing
    // windows while requests are continuously in flight.
    let (server, slot) =
        start(BatchConfig { max_delay: Duration::from_millis(5), ..BatchConfig::default() });
    let addr = server.addr().to_string();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let swapper = {
        let (slot, stop) = (slot.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut swaps = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                slot.swap(restore(&setup().snapshot_json));
                swaps += 1;
                std::thread::sleep(Duration::from_millis(20));
            }
            swaps
        })
    };

    let clients: Vec<_> = (0..3)
        .map(|c| {
            let addr = addr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let s = setup();
                let client = ScoreClient::new(addr);
                let mut versions: Vec<u64> = Vec::new();
                let mut requests = 0u64;
                let width = 4usize;
                let mut offset = (c * 7) % s.items.len().saturating_sub(width).max(1);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let hi = (offset + width).min(s.items.len());
                    let resp = client
                        .score(&s.items[offset..hi])
                        .expect("no request may be dropped during hot-swap");
                    // The snapshot restores to an identical model, so a
                    // response scored by ANY single coherent model matches
                    // the offline expectation; a half-swapped model would
                    // not.
                    assert_matches_expected(&resp.verdicts, offset);
                    if !versions.contains(&resp.model_version) {
                        versions.push(resp.model_version);
                    }
                    requests += 1;
                    offset = (offset + 3) % s.items.len().saturating_sub(width).max(1);
                }
                (requests, versions)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(800));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut all_versions: Vec<u64> = Vec::new();
    let mut total_requests = 0;
    for h in clients {
        let (requests, versions) = h.join().expect("client thread");
        total_requests += requests;
        for v in versions {
            if !all_versions.contains(&v) {
                all_versions.push(v);
            }
        }
    }
    let swaps = swapper.join().expect("swapper thread");
    assert!(total_requests > 0, "load ran");
    assert!(swaps > 1, "swapper swapped");
    assert!(
        all_versions.len() > 1,
        "clients must observe multiple model versions across {swaps} swaps, saw {all_versions:?}"
    );
    server.shutdown();
}

#[test]
fn queue_overflow_answers_429_quickly_instead_of_stalling() {
    // queue_capacity 1 + a long coalescing window + one worker: most of
    // the concurrent submissions below must bounce with 429.
    let (server, _slot) = start(BatchConfig {
        max_batch_items: 10_000,
        max_delay: Duration::from_millis(500),
        queue_capacity: 1,
        workers: 1,
    });
    let addr = server.addr().to_string();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let s = setup();
                let client = ScoreClient::new(addr).with_timeout(Duration::from_secs(30));
                match client.score(&s.items[i..=i]) {
                    Ok(resp) => {
                        assert_matches_expected(&resp.verdicts, i);
                        Ok(())
                    }
                    Err(ClientError::Http { status, body }) => Err((status, body)),
                    Err(other) => panic!("overload must not break sockets: {other}"),
                }
            })
        })
        .collect();
    let mut accepted = 0;
    let mut rejected = 0;
    for h in handles {
        match h.join().expect("probe thread") {
            Ok(()) => accepted += 1,
            Err((status, body)) => {
                assert_eq!(status, 429, "overflow maps to 429, got {status}: {body}");
                assert!(body.contains("retry"), "429 body explains itself: {body}");
                rejected += 1;
            }
        }
    }
    assert!(accepted >= 1, "the queued request is still served");
    assert!(rejected >= 1, "a 1-slot queue cannot absorb 8 concurrent requests");
    assert!(t0.elapsed() < Duration::from_secs(20), "overload must resolve fast, not stall");
    server.shutdown();
}

#[test]
fn healthz_and_metrics_report_serving_state() {
    let (server, slot) = start(BatchConfig::default());
    let addr = server.addr().to_string();
    let client = ScoreClient::new(addr);

    let health = client.health().expect("healthz");
    assert_eq!(health.status, "ok");
    assert_eq!(health.model_version, 1);

    // Score once, swap once; both must show up in health + metrics.
    let resp = client.score(&setup().items[..4.min(setup().items.len())]).expect("score");
    assert_eq!(resp.model_version, 1);
    slot.swap(restore(&setup().snapshot_json));
    let health = client.health().expect("healthz after swap");
    assert_eq!(health.model_version, 2);

    let metrics = client.metrics().expect("metrics");
    for series in ["cats_serve_requests", "cats_serve_model_version", "cats_serve_batch_items"] {
        assert!(metrics.contains(series), "missing {series} in /metrics:\n{metrics}");
    }
    server.shutdown();
}

#[test]
fn malformed_and_unknown_requests_get_4xx() {
    let (server, _slot) = start(BatchConfig::default());
    let addr = server.addr().to_string();

    // Hand-rolled bad request: invalid JSON body.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let body = "{definitely not json";
    write!(
        stream,
        "POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    write!(stream, "GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").expect("write");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 404"), "{raw}");
    server.shutdown();
}
