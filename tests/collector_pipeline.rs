//! Integration: collector → feature extraction → detection over the
//! simulated public site, and the measurement analyses over the results.

use cats::analysis::orders::client_distribution;
use cats::analysis::users::{mine_risky_pairs, share_below, unique_buyers};
use cats::collector::{CollectedItem, Collector, CollectorConfig, PublicSite, SiteConfig};
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, Detector, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use rand::{rngs::StdRng, SeedableRng};

fn trained(seed: u64, threshold: f64) -> (CatsPipeline, cats::platform::Platform) {
    let train = datasets::d0(0.006, seed);
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<String> = (0..400)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..400)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 32, epochs: 3, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );
    let mut detector = Detector::with_default_classifier(DetectorConfig {
        threshold,
        ..DetectorConfig::default()
    });
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    detector.fit(&items, &labels, &analyzer);
    (CatsPipeline::from_parts(analyzer, detector), train)
}

#[test]
fn crawl_then_detect_finds_latent_frauds() {
    let (pipeline, _) = trained(41, 0.9);
    let target = datasets::e_platform(0.0006, 900);
    let site = PublicSite::new(&target, SiteConfig::default());
    let mut collector = Collector::new(CollectorConfig::default());
    let collected = collector.crawl(&site);
    assert!(!collected.items.is_empty());

    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);

    let reported: Vec<&CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    assert!(!reported.is_empty(), "no frauds reported");
    // Majority of reports should be latent frauds.
    let true_hits = reported
        .iter()
        .filter(|ci| target.item(ci.item_id).is_some_and(|it| it.label.is_fraud()))
        .count();
    assert!(true_hits * 2 > reported.len(), "precision below 0.5: {true_hits}/{}", reported.len());
}

#[test]
fn measurement_signals_hold_on_reported_items() {
    let (pipeline, _) = trained(43, 0.9);
    let target = datasets::e_platform(0.0008, 904);
    let site = PublicSite::new(&target, SiteConfig::default());
    let collected = Collector::new(CollectorConfig::default()).crawl(&site);
    let items: Vec<ItemComments> =
        collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);

    let fraud: Vec<&CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| r.is_fraud).map(|(i, _)| i).collect();
    let normal: Vec<&CollectedItem> =
        collected.items.iter().zip(&reports).filter(|(_, r)| !r.is_fraud).map(|(i, _)| i).collect();
    if fraud.is_empty() {
        panic!("no frauds reported at this scale");
    }

    // User aspect: fraud buyers skew unreliable.
    let fb = unique_buyers(&fraud);
    let nb = unique_buyers(&normal);
    assert!(
        share_below(&fb, 2_000) > share_below(&nb, 2_000),
        "fraud buyers should skew low-reliability"
    );

    // Order aspect: Web share higher among fraud orders.
    let df = client_distribution(&fraud);
    let dn = client_distribution(&normal);
    assert!(df.share("Web") > dn.share("Web"), "fraud should skew Web");

    // Risky pairs exist (hired pools co-purchase).
    let pairs = mine_risky_pairs(&fraud, 2);
    assert!(pairs.max_purchases_by_one_user >= 1);
}

#[test]
fn noisy_site_and_clean_site_agree_on_verdicts() {
    let (pipeline, _) = trained(47, 0.9);
    let target = datasets::e_platform(0.0004, 910);
    let clean = PublicSite::new(
        &target,
        SiteConfig {
            duplicate_prob: 0.0,
            malformed_prob: 0.0,
            error_prob: 0.0,
            ..SiteConfig::default()
        },
    );
    let noisy = PublicSite::new(&target, SiteConfig::default());
    let run = |site: &PublicSite<'_>| -> Vec<u64> {
        let collected = Collector::new(CollectorConfig::default()).crawl(site);
        let items: Vec<ItemComments> =
            collected.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
        let sales: Vec<u64> = collected.items.iter().map(|i| i.sales_volume).collect();
        let reports = pipeline.detect(&items, &sales);
        collected
            .items
            .iter()
            .zip(&reports)
            .filter(|(_, r)| r.is_fraud)
            .map(|(i, _)| i.item_id)
            .collect()
    };
    let clean_ids = run(&clean);
    let noisy_ids = run(&noisy);
    // Crawl noise (a few % of records) must not change the verdict set much.
    let overlap = clean_ids.iter().filter(|id| noisy_ids.contains(id)).count();
    assert!(
        overlap * 10 >= clean_ids.len() * 7,
        "noise flipped too many verdicts: {overlap}/{}",
        clean_ids.len()
    );
}
