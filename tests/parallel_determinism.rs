//! Determinism guarantees of the parallel runtime (`cats-par`).
//!
//! Every pipeline stage routed through the work-stealing pool promises
//! one of two contracts, both checked here across thread counts:
//!
//! * **bit-identical** — feature extraction, GBT fitting and
//!   cross-validation produce exactly the same bytes at 1, 2 and 8
//!   threads;
//! * **seed-stable** — deterministic sharded word2vec is a function of
//!   the seed alone (thread-count independent), while the opt-in
//!   Hogwild schedule is only statistically equivalent and is checked
//!   for structure, not bits.

use cats::core::features::{extract_batch, ItemComments};
use cats::core::SemanticAnalyzer;
use cats::embedding::{Word2VecConfig, Word2VecTrainer};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees, SplitMode};
use cats::ml::model_selection::cross_validate_with;
use cats::ml::{Classifier, Dataset};
use cats::sentiment::SentimentModel;
use cats::text::{Corpus, Lexicon};
use cats_par::Parallelism;

fn par(threads: usize) -> Parallelism {
    Parallelism { threads, deterministic: true }
}

fn analyzer() -> SemanticAnalyzer {
    let lex = Lexicon::new(["hao".to_string()], ["cha".to_string()]);
    let docs = |texts: &[&str]| -> Vec<Vec<String>> {
        texts.iter().map(|t| t.split_whitespace().map(String::from).collect()).collect()
    };
    let sent = SentimentModel::train(&docs(&["hao hao zan"]), &docs(&["cha cha huai"]));
    SemanticAnalyzer::from_parts(lex, sent)
}

#[test]
fn extract_batch_is_bit_identical_across_thread_counts() {
    let a = analyzer();
    let items: Vec<ItemComments> = (0..60)
        .map(|i| {
            ItemComments::from_texts([
                format!("hao hao w{i} zan hao ! cha dian").as_str(),
                format!("dongxi hao x{} cha le", i % 7).as_str(),
            ])
        })
        .collect();
    let baseline = extract_batch(&items, &a, 1);
    for threads in [2usize, 8] {
        let rows = extract_batch(&items, &a, threads);
        assert_eq!(rows.len(), baseline.len());
        for (i, (r, b)) in rows.iter().zip(&baseline).enumerate() {
            for (x, y) in r.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} differs at {threads} threads");
            }
        }
    }
}

/// Two shifted Gaussian-ish blobs, deterministic, linearly inseparable
/// enough to grow real trees.
fn blobs(n: usize) -> Dataset {
    let mut d = Dataset::new(4);
    for i in 0..n {
        let j = ((i * 37) % 100) as f64 / 100.0;
        let k = ((i * 61) % 100) as f64 / 100.0;
        d.push(&[1.5 + j, k, j * k, 1.0 - k], 1);
        d.push(&[-1.5 - k, j, -j * k, k], 0);
    }
    d
}

#[test]
fn gbt_fit_is_bit_identical_across_thread_counts() {
    // Crosses both parallel gates: 3000 rows > PAR_MIN_ROWS, and root
    // nodes > PAR_MIN_SPLIT_MEMBERS.
    let data = blobs(1500);
    for mode in [SplitMode::Exact, SplitMode::Histogram { bins: 16 }] {
        let cfg = |p: Parallelism| GbtConfig {
            n_trees: 6,
            split_mode: mode,
            parallelism: p,
            ..GbtConfig::default()
        };
        let mut serial = GradientBoostedTrees::new(cfg(Parallelism::serial()));
        serial.fit(&data);
        for threads in [2usize, 8] {
            let mut parallel = GradientBoostedTrees::new(cfg(par(threads)));
            parallel.fit(&data);
            for i in 0..data.len() {
                assert_eq!(
                    serial.predict_proba(data.row(i)).to_bits(),
                    parallel.predict_proba(data.row(i)).to_bits(),
                    "row {i}, mode {mode:?}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn cross_validation_is_identical_across_thread_counts() {
    let data = blobs(150);
    let run = |threads: usize| {
        let mut m = GradientBoostedTrees::new(GbtConfig { n_trees: 4, ..GbtConfig::default() });
        cross_validate_with(&mut m, &data, 5, 7, par(threads))
    };
    let baseline = run(1);
    for threads in [2usize, 8] {
        let r = run(threads);
        assert_eq!(r.folds, baseline.folds, "{threads} threads");
        assert_eq!(r.precision.to_bits(), baseline.precision.to_bits());
        assert_eq!(r.recall.to_bits(), baseline.recall.to_bits());
        assert_eq!(r.f1.to_bits(), baseline.f1.to_bits());
        assert_eq!(r.accuracy.to_bits(), baseline.accuracy.to_bits());
    }
}

/// A clustered corpus big enough (≥ 4096 sentences) to engage the
/// deterministic sharded word2vec schedule.
fn clustered_corpus() -> Corpus {
    let mut corpus = Corpus::new();
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    for _ in 0..4600 {
        let v = next(4);
        let toks: Vec<String> = match next(3) {
            0 => vec![
                format!("hao{v}"),
                format!("zan{}", next(4)),
                format!("hao{}", next(4)),
                format!("bang{v}"),
                "kuai".to_string(),
            ],
            1 => vec![
                format!("cha{v}"),
                format!("lan{}", next(4)),
                format!("cha{}", next(4)),
                format!("huai{v}"),
                "man".to_string(),
            ],
            _ => vec!["he".to_string(), "zi".to_string(), "kuai".to_string(), "di".to_string()],
        };
        corpus.push_tokens(&toks);
    }
    corpus
}

#[test]
fn deterministic_word2vec_is_seed_stable_across_thread_counts() {
    let corpus = clustered_corpus();
    assert!(corpus.len() >= 4096, "fixture must engage the sharded schedule");
    let train = |threads: usize| {
        let cfg = Word2VecConfig {
            dim: 16,
            epochs: 2,
            min_count: 2,
            subsample: 0.0,
            parallelism: par(threads),
            ..Word2VecConfig::default()
        };
        Word2VecTrainer::new(cfg).train(&corpus)
    };
    let baseline = train(1);
    for threads in [2usize, 8] {
        let emb = train(threads);
        assert_eq!(emb.len(), baseline.len());
        for (word, _) in baseline.words() {
            let a = baseline.vector(word).unwrap();
            let b = emb.vector(word).unwrap();
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{word} differs at {threads} threads");
            }
        }
    }
}

#[test]
fn hogwild_word2vec_preserves_cluster_structure() {
    let corpus = clustered_corpus();
    let cfg = Word2VecConfig {
        dim: 16,
        epochs: 3,
        min_count: 2,
        subsample: 0.0,
        parallelism: Parallelism { threads: 4, deterministic: false },
        ..Word2VecConfig::default()
    };
    let emb = Word2VecTrainer::new(cfg).train(&corpus);
    // Lock-free training races updates, so check semantics rather than
    // bits: words that co-occur must stay closer than words that never do.
    let within = emb.similarity("hao0", "hao1").unwrap();
    let across = emb.similarity("hao0", "cha1").unwrap();
    assert!(within > across, "within-cluster sim {within} should beat across-cluster sim {across}");
}
