//! Integration: the full chain under aggressive fault injection — the
//! crawl must terminate on the simulated clock, account for every fault it
//! absorbed, and hand the detector data it can score without a single
//! panic or non-finite number.

use cats::collector::{
    CollectedDataset, Collector, CollectorConfig, CrawlStats, FaultPlan, PublicSite, SiteConfig,
};
use cats::core::semantic::SemanticConfig;
use cats::core::{
    CatsPipeline, DetectionSummary, Detector, DetectorConfig, FilterDecision, ItemComments,
    SemanticAnalyzer,
};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::{datasets, Platform};
use rand::{rngs::StdRng, SeedableRng};

fn trained(seed: u64, threshold: f64) -> CatsPipeline {
    let train = datasets::d0(0.006, seed);
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<String> = (0..400)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..400)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 32, epochs: 3, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );
    let mut detector = Detector::with_default_classifier(DetectorConfig {
        threshold,
        ..DetectorConfig::default()
    });
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    detector.fit(&items, &labels, &analyzer);
    CatsPipeline::from_parts(analyzer, detector)
}

fn crawl_at(platform: &Platform, faults: FaultPlan) -> (CollectedDataset, CrawlStats) {
    let site = PublicSite::new(platform, SiteConfig { faults, ..SiteConfig::default() });
    let mut collector = Collector::new(CollectorConfig::default());
    let data = collector.crawl(&site);
    (data, collector.stats())
}

#[test]
fn aggressive_faults_terminate_on_the_simulated_clock() {
    let target = datasets::e_platform(0.0006, 930);
    let wall = std::time::Instant::now();
    let (data, s) = crawl_at(&target, FaultPlan::at_intensity(0.9));

    // Every second waited out is simulated: hours of backoff, breaker
    // cooldowns, and stalls must pass in real-time seconds.
    assert_eq!(s.sim_clock_secs, s.backoff_wait_secs + s.breaker_wait_secs + s.stall_secs);
    assert!(s.sim_clock_secs > 0, "a 0.9-intensity crawl should have waited: {s:?}");
    assert!(wall.elapsed().as_secs() < 60, "crawl slept on the wall clock");

    // The fault mix actually fired...
    assert!(s.rate_limited > 0 && s.outage_errors > 0, "{s:?}");
    assert!(s.poisoned_records > 0, "{s:?}");

    // ...and every lost resource is accounted for, once.
    assert_eq!(s.truncated_resources, s.breaker_give_ups + s.pages_abandoned, "{s:?}");
    if s.truncated_resources > 0 {
        assert!(
            data.catalogue_truncated || data.items.iter().any(|i| i.truncated),
            "truncation invisible in the dataset: {s:?}"
        );
    }
    // Poison never reaches the dataset.
    for item in &data.items {
        assert!(item.price_cents <= 1_000_000_000 && item.sales_volume <= 100_000_000);
        for c in &item.comments {
            assert!(c.user_exp_value <= 100_000_000 && c.date.starts_with('2'));
        }
    }
}

#[test]
fn degraded_data_flows_through_detection_without_nans() {
    let pipeline = trained(53, 0.9);
    let target = datasets::e_platform(0.0006, 931);
    let (data, stats) = crawl_at(&target, FaultPlan::at_intensity(0.6));
    assert!(!data.items.is_empty(), "0.6 intensity should not wipe out the crawl");

    let items: Vec<ItemComments> =
        data.items.iter().map(|i| ItemComments::from_texts(i.comment_texts())).collect();
    let sales: Vec<u64> = data.items.iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&items, &sales);
    assert_eq!(reports.len(), data.items.len());
    for r in &reports {
        assert!(r.score.is_finite(), "non-finite score at {}", r.index);
        if let Some(fv) = &r.features {
            assert!(fv.is_finite(), "non-finite features at {}", r.index);
        }
        if matches!(r.filter, FilterDecision::Quarantined) {
            assert!(!r.is_fraud && r.features.is_none());
        }
    }

    let truncated = data.items.iter().filter(|i| i.truncated).count();
    let summary = DetectionSummary::from_reports(&reports).with_crawl_health(
        truncated,
        data.comment_count() as u64,
        stats.malformed_records + stats.duplicate_records + stats.poisoned_records,
    );
    assert_eq!(summary.health.items_truncated, truncated);
    assert_eq!(summary.health.comments_kept, data.comment_count() as u64);
    assert!(summary.health.comments_dropped > 0, "0.6 intensity drops records: {stats:?}");
    assert!(summary.health.dropped_fraction > 0.0 && summary.health.dropped_fraction.is_finite());
    // The summary serializes cleanly (a NaN would become `null`).
    let json = serde_json::to_string(&summary).expect("summary serializes");
    assert!(!json.contains("null"), "{json}");
}

#[test]
fn faulted_ingestion_is_deterministic_end_to_end() {
    let target = datasets::e_platform(0.0005, 932);
    let faults = FaultPlan::at_intensity(0.7);
    let (data_a, stats_a) = crawl_at(&target, faults);
    let (data_b, stats_b) = crawl_at(&target, faults);
    assert_eq!(stats_a, stats_b);
    assert_eq!(data_a, data_b);
}
