//! Cross-crate integration: the full CATS pipeline from platform
//! generation through detection and evaluation.

use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, Detector, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::{datasets, Platform};
use rand::{rngs::StdRng, SeedableRng};

fn train_pipeline(platform: &Platform, seed: u64, threshold: f64) -> CatsPipeline {
    let corpus: Vec<&str> = platform
        .items()
        .iter()
        .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<String> = (0..400)
        .map(|_| generate_comment(platform.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..400)
        .map(|_| generate_comment(platform.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &platform.lexicon().positive_seeds(),
        &platform.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 32, epochs: 3, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );
    let mut detector = Detector::with_default_classifier(DetectorConfig {
        threshold,
        ..DetectorConfig::default()
    });
    let items: Vec<ItemComments> = platform
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = platform.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    detector.fit(&items, &labels, &analyzer);
    CatsPipeline::from_parts(analyzer, detector)
}

fn to_inputs(platform: &Platform) -> (Vec<ItemComments>, Vec<u64>, Vec<u8>) {
    let items = platform
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let sales = platform.items().iter().map(|i| i.sales_volume).collect();
    let labels = platform.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    (items, sales, labels)
}

#[test]
fn train_on_one_platform_detect_on_another() {
    let train = datasets::d0(0.006, 301);
    let pipeline = train_pipeline(&train, 301, 0.5);

    let target = datasets::d0(0.006, 999);
    let (items, sales, labels) = to_inputs(&target);
    let reports = pipeline.detect(&items, &sales);
    let m = CatsPipeline::evaluate(&reports, &labels);
    assert!(m.f1 > 0.75, "cross-platform F1 too low: {m}");
    assert!(m.precision > 0.75, "{m}");
}

#[test]
fn detection_reports_are_deterministic() {
    let train = datasets::d0(0.004, 77);
    let pipeline = train_pipeline(&train, 77, 0.5);
    let target = datasets::d0(0.004, 78);
    let (items, sales, _) = to_inputs(&target);
    let a = pipeline.detect(&items, &sales);
    let b = pipeline.detect(&items, &sales);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.score, y.score);
        assert_eq!(x.is_fraud, y.is_fraud);
        assert_eq!(x.filter, y.filter);
    }
}

#[test]
fn stricter_threshold_reports_subset() {
    let train = datasets::d0(0.004, 11);
    let loose = train_pipeline(&train, 11, 0.3);
    let target = datasets::d0(0.004, 12);
    let (items, sales, _) = to_inputs(&target);
    let loose_reports = loose.detect(&items, &sales);

    let mut strict = train_pipeline(&train, 11, 0.3);
    strict.detector_mut().set_threshold(0.9);
    let strict_reports = strict.detect(&items, &sales);

    for (l, s) in loose_reports.iter().zip(&strict_reports) {
        // same trained model, same scores: strict verdicts imply loose ones
        assert_eq!(l.score, s.score);
        if s.is_fraud {
            assert!(l.is_fraud, "strict fraud not in loose report set");
        }
    }
    let n_loose = loose_reports.iter().filter(|r| r.is_fraud).count();
    let n_strict = strict_reports.iter().filter(|r| r.is_fraud).count();
    assert!(n_strict <= n_loose);
}

#[test]
fn filtered_low_sales_items_never_reported() {
    let train = datasets::d0(0.004, 21);
    let pipeline = train_pipeline(&train, 21, 0.0); // report everything classified
    let target = datasets::d0(0.004, 22);
    let (items, sales, _) = to_inputs(&target);
    let reports = pipeline.detect(&items, &sales);
    for (r, &sv) in reports.iter().zip(&sales) {
        if sv < 5 {
            assert!(!r.is_fraud, "low-sales item reported");
            assert_eq!(r.score, 0.0);
        }
    }
}
