//! Integration: the sharded cluster layer — a [`cats::serve::Router`]
//! consistent-hashing items over several shard servers, failing over
//! past dead shards, ejecting and re-admitting them, and rolling model
//! swaps with no version-skewed response.
//!
//! Shards here are in-process [`cats::serve::Server`]s (the router only
//! sees addresses, so process boundaries are irrelevant to routing
//! semantics); the subprocess plumbing is exercised by `exp_cluster`
//! and the `shard` module's own tests.

use cats::core::pipeline::PipelineSnapshot;
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats::ml::{Classifier, Dataset};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use cats::serve::{
    BatchConfig, HealthConfig, ModelSlot, Router, RouterConfig, ScoreClient, ScoreItem,
    ServeConfig, Server,
};
use rand::{rngs::StdRng, SeedableRng};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One-time expensive setup: a trained snapshot, scoring items and
/// their expected offline verdicts (same recipe as tests/serve.rs).
struct Setup {
    snapshot_json: String,
    items: Vec<ScoreItem>,
    expected: Vec<cats::core::DetectionReport>,
}

fn setup() -> &'static Setup {
    static S: OnceLock<Setup> = OnceLock::new();
    S.get_or_init(|| {
        let train = datasets::d0(0.003, 91);
        let corpus: Vec<&str> = train
            .items()
            .iter()
            .flat_map(|i| i.comments.iter().map(|c| c.content.as_str()))
            .collect();
        let mut rng = StdRng::seed_from_u64(91);
        let pos: Vec<String> = (0..300)
            .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
            .collect();
        let neg: Vec<String> = (0..300)
            .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
            .collect();
        let analyzer = SemanticAnalyzer::train(
            &corpus,
            &train.lexicon().positive_seeds(),
            &train.lexicon().negative_seeds(),
            &pos.iter().map(String::as_str).collect::<Vec<_>>(),
            &neg.iter().map(String::as_str).collect::<Vec<_>>(),
            SemanticConfig {
                word2vec: Word2VecConfig { dim: 24, epochs: 2, ..Word2VecConfig::default() },
                expansion: ExpansionConfig::default(),
                ..SemanticConfig::default()
            },
        );
        let train_items: Vec<ItemComments> = train
            .items()
            .iter()
            .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
            .collect();
        let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
        let rows = cats::core::features::extract_batch(&train_items, &analyzer, 0);
        let mut data = Dataset::new(cats::core::N_FEATURES);
        for (r, &l) in rows.iter().zip(&labels) {
            data.push(r.as_slice(), l);
        }
        let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
        gbt.fit(&data);
        let snapshot_json = CatsPipeline::snapshot(analyzer, DetectorConfig::default(), gbt)
            .to_json()
            .expect("snapshot serializes");

        let target = datasets::d0(0.003, 92);
        let items: Vec<ScoreItem> = target
            .items()
            .iter()
            .map(|it| ScoreItem {
                item_id: it.id,
                sales_volume: it.sales_volume,
                comments: it.comments.iter().map(|c| c.content.clone()).collect(),
            })
            .collect();
        let ics: Vec<ItemComments> = items
            .iter()
            .map(|i| ItemComments::from_texts(i.comments.iter().map(String::as_str)))
            .collect();
        let sales: Vec<u64> = items.iter().map(|i| i.sales_volume).collect();
        let expected = restore(&snapshot_json).detect(&ics, &sales);
        Setup { snapshot_json, items, expected }
    })
}

fn restore(json: &str) -> CatsPipeline {
    CatsPipeline::restore(PipelineSnapshot::from_json(json).expect("snapshot parses"))
}

/// Starts `n` in-process shard servers on OS-assigned ports.
fn start_shards(n: usize) -> Vec<Server> {
    (0..n)
        .map(|_| {
            let slot = Arc::new(ModelSlot::new(restore(&setup().snapshot_json)));
            Server::start(
                slot,
                ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    batch: BatchConfig {
                        max_delay: Duration::from_millis(2),
                        ..BatchConfig::default()
                    },
                    ..ServeConfig::default()
                },
            )
            .expect("bind shard server")
        })
        .collect()
}

/// A router over `shards` with a fast probe cadence so ejection /
/// re-admission land within test timeouts.
fn start_router(shards: &[Server]) -> Router {
    Router::start(
        shards.iter().map(|s| s.addr().to_string()).collect(),
        RouterConfig {
            health: HealthConfig {
                eject_after: 2,
                readmit_after: 2,
                probe_interval: Duration::from_millis(25),
                probe_timeout: Duration::from_millis(250),
            },
            shard_connect_timeout: Duration::from_millis(250),
            ..RouterConfig::default()
        },
    )
    .expect("start router")
}

fn wait_for_state(router: &Router, id: usize, want: &str, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if router.shard_states().iter().any(|s| s.id == id && s.state == want) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn assert_matches_expected(verdicts: &[cats::serve::ScoreVerdict], offset: usize) {
    let s = setup();
    for (k, v) in verdicts.iter().enumerate() {
        let exp = &s.expected[offset + k];
        assert_eq!(v.item_id, s.items[offset + k].item_id);
        assert_eq!(
            v.score.to_bits(),
            exp.score.to_bits(),
            "item {} routed through the cluster must score bit-identically to offline detect",
            v.item_id
        );
        assert_eq!(v.is_fraud, exp.is_fraud);
    }
}

#[test]
fn routed_scores_are_bit_identical_to_offline_detect() {
    let shards = start_shards(3);
    let router = start_router(&shards);
    let client = ScoreClient::new(router.addr().to_string());
    let s = setup();
    // Chunked so single requests span multiple shards via the ring.
    for (ci, chunk) in s.items.chunks(16).enumerate() {
        let offset = ci * 16;
        let resp = client.score(chunk).expect("routed score succeeds");
        assert_eq!(resp.model_version, 1, "whole cluster serves version 1");
        assert_eq!(resp.verdicts.len(), chunk.len());
        assert_matches_expected(&resp.verdicts, offset);
    }
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn shard_death_fails_over_without_losing_requests_then_ejects() {
    let mut shards = start_shards(2);
    let router = start_router(&shards);
    let client = ScoreClient::new(router.addr().to_string());
    let s = setup();

    // Kill shard 1 (listener closed, connections refused).
    shards.remove(1).shutdown();

    // Every request must still be answered — items that hash to the
    // dead shard are replayed on the next live shard by the router.
    for (ci, chunk) in s.items.chunks(8).take(6).enumerate() {
        let offset = ci * 8;
        let resp = client.score(chunk).expect("failover must answer every request");
        assert_eq!(resp.verdicts.len(), chunk.len());
        assert_matches_expected(&resp.verdicts, offset);
    }
    assert!(
        wait_for_state(&router, 1, "ejected", Duration::from_secs(10)),
        "dead shard must be ejected: {:?}",
        router.shard_states()
    );
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn dead_shard_is_readmitted_after_coming_back() {
    let mut shards = start_shards(2);
    let router = start_router(&shards);
    let victim_addr = shards[1].addr().to_string();
    shards.remove(1).shutdown();
    assert!(
        wait_for_state(&router, 1, "ejected", Duration::from_secs(10)),
        "dead shard must be ejected first"
    );

    // Bring a fresh shard back on the SAME address (retry briefly: the
    // old listener may linger an instant after shutdown).
    let slot = Arc::new(ModelSlot::new(restore(&setup().snapshot_json)));
    let deadline = Instant::now() + Duration::from_secs(10);
    let revived = loop {
        match Server::start(
            slot.clone(),
            ServeConfig { addr: victim_addr.clone(), ..ServeConfig::default() },
        ) {
            Ok(server) => break server,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("rebind {victim_addr}: {e}"),
        }
    };
    assert!(
        wait_for_state(&router, 1, "live", Duration::from_secs(10)),
        "revived shard must be re-admitted: {:?}",
        router.shard_states()
    );
    // And it serves routed traffic again.
    let client = ScoreClient::new(router.addr().to_string());
    let resp = client.score(&setup().items[..8]).expect("score after re-admission");
    assert_eq!(resp.verdicts.len(), 8);
    router.shutdown();
    revived.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn rolling_swap_is_coordinated_and_single_version_under_load() {
    let shards = start_shards(3);
    let router = start_router(&shards);
    let addr = router.addr().to_string();
    let s = setup();

    // Persist the snapshot as a binary CATS-IO2 artifact: the rolling
    // swap loads `.cats` files through the same sniffing loader as JSON,
    // and the swapped-in model must keep producing verdicts bit-identical
    // to the offline (JSON-restored) expectations.
    let dir = std::env::temp_dir().join(format!("cats_cluster_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let artifact = dir.join("model_v2.cats");
    PipelineSnapshot::from_json(&s.snapshot_json)
        .expect("snapshot parses")
        .save(&artifact)
        .expect("write IO2 artifact");

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let addr = addr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let s = setup();
                let client = ScoreClient::new(addr);
                let mut versions: Vec<u64> = Vec::new();
                let mut offset = c * 11;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let lo = offset % s.items.len().saturating_sub(8).max(1);
                    let resp = client
                        .score(&s.items[lo..lo + 8])
                        .expect("no request may fail during a rolling swap");
                    // Bit-identical scores prove the batch was scored by
                    // ONE coherent model — v1 and v2 restore identically,
                    // a half-swapped mix would not.
                    assert_matches_expected(&resp.verdicts, lo);
                    if !versions.contains(&resp.model_version) {
                        versions.push(resp.model_version);
                    }
                    offset += 5;
                }
                versions
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(200));
    let v = router.rolling_swap(&artifact.display().to_string()).expect("rolling swap");
    assert_eq!(v, 2);
    assert_eq!(router.cluster_version(), 2);
    std::thread::sleep(Duration::from_millis(200));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut seen: Vec<u64> = Vec::new();
    for h in clients {
        for v in h.join().expect("client thread") {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2], "load spans the swap and sees exactly v1 then v2");

    // After the swap, every shard reports the new version.
    let client = ScoreClient::new(addr);
    let resp = client.score(&s.items[..4]).expect("post-swap score");
    assert_eq!(resp.model_version, 2);
    let _ = std::fs::remove_dir_all(&dir);
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn pinned_requests_resolve_old_generation_until_it_ages_out() {
    let shards = start_shards(2);
    let router = start_router(&shards);
    let client = ScoreClient::new(router.addr().to_string());
    let s = setup();

    let dir = std::env::temp_dir().join(format!("cats_cluster_pin_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let artifact = dir.join("model.json");
    std::fs::write(&artifact, &s.snapshot_json).expect("write artifact");

    assert_eq!(router.rolling_swap(&artifact.display().to_string()).expect("swap to v2"), 2);
    // v1 is one generation back: a client pin still resolves it.
    let resp = client.score_pinned(&s.items[..4], 1).expect("pin v1 resolves via previous slot");
    assert_eq!(resp.model_version, 1);

    assert_eq!(router.rolling_swap(&artifact.display().to_string()).expect("swap to v3"), 3);
    // v1 is now two generations back — evicted everywhere; the router
    // must forward the shard's 409 instead of silently rescoring on a
    // different version.
    let err = client.score_pinned(&s.items[..4], 1).expect_err("pin v1 is gone after two swaps");
    match err {
        cats::serve::ClientError::Http { status, .. } => assert_eq!(status, 409),
        other => panic!("expected HTTP 409, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}

#[test]
fn cluster_metrics_are_labeled_and_merged() {
    let shards = start_shards(2);
    let router = start_router(&shards);
    let client = ScoreClient::new(router.addr().to_string());
    let _ = client.score(&setup().items[..4]).expect("score once");

    let text = client.metrics().expect("router /metrics");
    for label in ["shard=\"router\"", "shard=\"0\"", "shard=\"1\"", "shard=\"cluster\""] {
        assert!(text.contains(label), "missing {label} section in router /metrics");
    }
    // The merged section must carry shard-side series (the shards score
    // requests, the router does not).
    assert!(
        text.contains("cats_serve_requests"),
        "merged metrics must include shard request counters"
    );
    // And the JSON aggregate parses back into a snapshot.
    let snap = client.metrics_snapshot().expect("router /metrics.json").into_snapshot();
    assert!(
        snap.counters.keys().any(|k| k.starts_with("cats.serve.")),
        "merged snapshot carries serve counters: {:?}",
        snap.counters.keys().take(5).collect::<Vec<_>>()
    );
    router.shutdown();
    for s in shards {
        s.shutdown();
    }
}
