//! Integration: detector persistence — train, snapshot to JSON, restore,
//! and verify identical verdicts (the workflow for shipping a pre-trained
//! CATS to a new platform).

use cats::core::pipeline::PipelineSnapshot;
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats::ml::{Classifier, Dataset};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use rand::{rngs::StdRng, SeedableRng};

#[test]
fn snapshot_roundtrip_preserves_verdicts() {
    let train = datasets::d0(0.004, 61);
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    let mut rng = StdRng::seed_from_u64(61);
    let pos: Vec<String> = (0..300)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..300)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 24, epochs: 2, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );

    // Train a concrete GBT on the extracted features.
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    let rows = cats::core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(cats::core::N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);

    // Snapshot → JSON → restore.
    let snap = CatsPipeline::snapshot(analyzer.clone(), DetectorConfig::default(), gbt.clone());
    let json = serde_json::to_string(&snap).expect("serialize");
    assert!(json.len() > 1_000, "snapshot suspiciously small");
    let restored: PipelineSnapshot = serde_json::from_str(&json).expect("deserialize");
    let pipeline = CatsPipeline::restore(restored);

    // Fresh target platform; compare restored pipeline against the
    // original concrete model.
    let target = datasets::d0(0.004, 62);
    let t_items: Vec<ItemComments> = target
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let t_sales: Vec<u64> = target.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&t_items, &t_sales);

    let t_rows = cats::core::features::extract_batch(&t_items, &analyzer, 0);
    for (report, row) in reports.iter().zip(&t_rows) {
        if report.features.is_some() {
            let direct = gbt.predict_proba(row.as_slice());
            assert!(
                (report.score - direct).abs() < 1e-12,
                "restored score {} != direct {}",
                report.score,
                direct
            );
        }
    }
}
