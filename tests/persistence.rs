//! Integration: detector persistence — train, snapshot to JSON, restore,
//! and verify identical verdicts (the workflow for shipping a pre-trained
//! CATS to a new platform) — plus the corruption classes of DESIGN.md
//! §10: a truncated, bit-flipped or zero-length snapshot file must
//! surface a typed [`PersistError`], never a panic or a half-loaded
//! model.

use cats::core::pipeline::{PersistError, PipelineSnapshot};
use cats::core::semantic::SemanticConfig;
use cats::core::{CatsPipeline, DetectorConfig, ItemComments, SemanticAnalyzer};
use cats::embedding::{ExpansionConfig, Word2VecConfig};
use cats::ml::gbt::{GbtConfig, GradientBoostedTrees};
use cats::ml::{Classifier, Dataset};
use cats::platform::comment_model::{generate_comment, CommentStyle};
use cats::platform::datasets;
use cats::platform::Platform;
use rand::{rngs::StdRng, SeedableRng};

/// Trains a small analyzer + concrete GBT on a platform's own data —
/// the shared setup for the persistence tests.
fn train_parts(train: &Platform, seed: u64) -> (SemanticAnalyzer, GradientBoostedTrees) {
    let corpus: Vec<&str> =
        train.items().iter().flat_map(|i| i.comments.iter().map(|c| c.content.as_str())).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<String> = (0..300)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicPositive, &mut rng))
        .collect();
    let neg: Vec<String> = (0..300)
        .map(|_| generate_comment(train.lexicon(), CommentStyle::OrganicNegative, &mut rng))
        .collect();
    let analyzer = SemanticAnalyzer::train(
        &corpus,
        &train.lexicon().positive_seeds(),
        &train.lexicon().negative_seeds(),
        &pos.iter().map(String::as_str).collect::<Vec<_>>(),
        &neg.iter().map(String::as_str).collect::<Vec<_>>(),
        SemanticConfig {
            word2vec: Word2VecConfig { dim: 24, epochs: 2, ..Word2VecConfig::default() },
            expansion: ExpansionConfig::default(),
            ..SemanticConfig::default()
        },
    );
    let items: Vec<ItemComments> = train
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let labels: Vec<u8> = train.items().iter().map(|i| u8::from(i.label.is_fraud())).collect();
    let rows = cats::core::features::extract_batch(&items, &analyzer, 0);
    let mut data = Dataset::new(cats::core::N_FEATURES);
    for (r, &l) in rows.iter().zip(&labels) {
        data.push(r.as_slice(), l);
    }
    let mut gbt = GradientBoostedTrees::new(GbtConfig::default());
    gbt.fit(&data);
    (analyzer, gbt)
}

#[test]
fn snapshot_roundtrip_preserves_verdicts() {
    let train = datasets::d0(0.004, 61);
    let (analyzer, gbt) = train_parts(&train, 61);

    // Snapshot → JSON → restore.
    let snap = CatsPipeline::snapshot(analyzer.clone(), DetectorConfig::default(), gbt.clone());
    let json = serde_json::to_string(&snap).expect("serialize");
    assert!(json.len() > 1_000, "snapshot suspiciously small");
    let restored: PipelineSnapshot = serde_json::from_str(&json).expect("deserialize");
    let pipeline = CatsPipeline::restore(restored);

    // Fresh target platform; compare restored pipeline against the
    // original concrete model.
    let target = datasets::d0(0.004, 62);
    let t_items: Vec<ItemComments> = target
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let t_sales: Vec<u64> = target.items().iter().map(|i| i.sales_volume).collect();
    let reports = pipeline.detect(&t_items, &t_sales);

    let t_rows = cats::core::features::extract_batch(&t_items, &analyzer, 0);
    for (report, row) in reports.iter().zip(&t_rows) {
        if report.features.is_some() {
            let direct = gbt.predict_proba(row.as_slice());
            assert!(
                (report.score - direct).abs() < 1e-12,
                "restored score {} != direct {}",
                report.score,
                direct
            );
        }
    }
}

#[test]
fn snapshot_json_roundtrip_reports_are_byte_identical() {
    let train = datasets::d0(0.003, 71);
    let (analyzer, gbt) = train_parts(&train, 71);
    let snap = CatsPipeline::snapshot(analyzer, DetectorConfig::default(), gbt);
    assert_eq!(snap.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);

    // Serialization is stable: parse → re-serialize is byte-identical,
    // so a snapshot survives any number of save/load generations.
    let json = snap.to_json().expect("serialize");
    let parsed = PipelineSnapshot::from_json(&json).expect("parse");
    assert_eq!(parsed.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);
    let rejson = parsed.to_json().expect("re-serialize");
    assert_eq!(json, rejson, "snapshot JSON must be stable across generations");

    // And the models behind both generations score byte-identically:
    // serialize the full report streams and compare as strings, the
    // same shape `cats-cli detect` emits.
    let target = datasets::d0(0.003, 72);
    let t_items: Vec<ItemComments> = target
        .items()
        .iter()
        .map(|i| ItemComments::from_texts(i.comments.iter().map(|c| c.content.as_str())))
        .collect();
    let t_sales: Vec<u64> = target.items().iter().map(|i| i.sales_volume).collect();
    let gen1 = CatsPipeline::restore(PipelineSnapshot::from_json(&json).expect("gen1"));
    let gen2 = CatsPipeline::restore(PipelineSnapshot::from_json(&rejson).expect("gen2"));
    let reports1 = serde_json::to_string(&gen1.detect(&t_items, &t_sales)).expect("reports1");
    let reports2 = serde_json::to_string(&gen2.detect(&t_items, &t_sales)).expect("reports2");
    assert!(reports1.contains("\"score\""), "reports are non-trivial");
    assert_eq!(reports1, reports2, "restored models must score byte-identically");

    // The same document stamped with a future format version must be
    // rejected — a deployed server never loads a model it can't read.
    let future = json.replacen(
        &format!("\"format_version\":{}", cats::core::SNAPSHOT_FORMAT_VERSION),
        &format!("\"format_version\":{}", cats::core::SNAPSHOT_FORMAT_VERSION + 1),
        1,
    );
    let err =
        PipelineSnapshot::from_json(&future).map(|_| ()).expect_err("future version rejected");
    assert!(err.to_string().contains("newer than supported"), "{err}");
}

#[test]
fn io2_container_corruption_classes_fail_typed_and_never_panic() {
    use cats::io::io2::{is_io2, Io2Builder, Io2File};

    let train = datasets::d0(0.003, 91);
    let (analyzer, gbt) = train_parts(&train, 91);
    let snap = CatsPipeline::snapshot(analyzer, DetectorConfig::default(), gbt);

    let dir = std::env::temp_dir().join(format!("cats_persist_io2_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("model.cats");

    // The default save is now the CATS-IO2 binary container.
    snap.save(&path).expect("IO2 save");
    let good = std::fs::read(&path).expect("read container bytes");
    assert!(is_io2(&good), "save writes a CATS-IO2 container");
    let restored = PipelineSnapshot::load(&path).expect("intact container loads");
    assert_eq!(restored.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);

    // Truncated mid-section-table: the header promises more entries
    // than the file holds.
    std::fs::write(&path, &good[..24]).expect("truncate table");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("torn table must fail");
    assert!(
        matches!(err, PersistError::Io(cats::io::IoError::LengthMismatch { .. })),
        "want a typed length mismatch, got: {err}"
    );

    // Truncated mid-payload: the table is intact but a section's bytes
    // run past EOF.
    std::fs::write(&path, &good[..good.len() - 16]).expect("truncate payload");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("torn payload must fail");
    assert!(
        matches!(err, PersistError::Io(cats::io::IoError::LengthMismatch { .. })),
        "want a typed length mismatch, got: {err}"
    );

    // A single flipped bit inside a section payload: the per-section
    // CRC32 catches it.
    let mut flipped = good.clone();
    let n = flipped.len();
    flipped[n - 2] ^= 0x40;
    std::fs::write(&path, &flipped).expect("bit-flip");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("bit-flip must fail");
    assert!(
        matches!(err, PersistError::Io(cats::io::IoError::ChecksumMismatch { .. })),
        "want a checksum mismatch, got: {err}"
    );

    // Zero-length file (create-then-crash artifact).
    std::fs::write(&path, b"").expect("empty");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("empty must fail");
    assert!(
        matches!(err, PersistError::Io(cats::io::IoError::Empty { .. })),
        "want the empty-file error, got: {err}"
    );

    // A container stamped with a future layout version must be rejected
    // up front — this build cannot know how to read it.
    let mut future = good.clone();
    future[8..12].copy_from_slice(&2u32.to_le_bytes());
    std::fs::write(&path, &future).expect("future version");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("future container rejected");
    assert!(err.to_string().contains("newer than supported"), "{err}");

    // An unknown section from a richer future writer is skipped, not
    // fatal: rebuild the container with an extra section and reload.
    let parsed = Io2File::parse(&good, "good").expect("parse good container");
    let mut b = Io2Builder::new();
    for name in parsed.section_names() {
        b.section(name, parsed.section(name).expect("listed section").to_vec());
    }
    b.section("zz-future", b"from a future build".to_vec());
    let with_future = b.finish();
    let reloaded = PipelineSnapshot::from_bytes(&with_future).expect("unknown section skipped");
    assert_eq!(
        reloaded.to_io2_bytes().expect("re-encode").as_slice(),
        good.as_slice(),
        "decoding ignores the unknown section and re-encodes canonically"
    );

    // Format sniffing: the same model written as CATS-IO1-framed JSON
    // and as bare JSON loads through the very same entry point.
    snap.save_json(&path).expect("legacy checksummed JSON save");
    let framed = std::fs::read(&path).expect("read framed bytes");
    assert!(framed.starts_with(b"CATS-IO1"), "save_json writes the CATS-IO1 frame");
    let legacy = PipelineSnapshot::load(&path).expect("CATS-IO1 JSON loads");
    assert_eq!(legacy.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);
    std::fs::write(&path, snap.to_json().expect("serialize").as_bytes()).expect("bare JSON");
    let bare = PipelineSnapshot::load(&path).expect("bare JSON loads");
    assert_eq!(bare.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_files_fail_typed_and_never_panic() {
    let train = datasets::d0(0.003, 81);
    let (analyzer, gbt) = train_parts(&train, 81);
    let snap = CatsPipeline::snapshot(analyzer, DetectorConfig::default(), gbt);

    let dir = std::env::temp_dir().join(format!("cats_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("model.snapshot");

    // The happy path: save is atomic + checksummed, load verifies.
    snap.save(&path).expect("checksummed save");
    let restored = PipelineSnapshot::load(&path).expect("intact snapshot loads");
    assert_eq!(restored.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);
    let good = std::fs::read(&path).expect("read snapshot bytes");
    assert!(good.len() > 1_000, "checksummed snapshot suspiciously small");

    // Truncated mid-payload (torn non-atomic rewrite): the header
    // declares more bytes than are present.
    std::fs::write(&path, &good[..good.len() / 2]).expect("truncate");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("truncated must fail");
    assert!(matches!(err, PersistError::Io(_)), "want a typed IO error, got: {err}");

    // A single flipped bit deep in the payload: the JSON may still
    // parse, so only the checksum catches it.
    let mut flipped = good.clone();
    let n = flipped.len();
    flipped[n - 2] ^= 0x40;
    std::fs::write(&path, &flipped).expect("bit-flip");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("bit-flip must fail");
    assert!(
        matches!(err, PersistError::Io(cats::io::IoError::ChecksumMismatch { .. })),
        "want a checksum mismatch, got: {err}"
    );

    // Zero-length file (classic create-then-crash artifact).
    std::fs::write(&path, b"").expect("empty");
    let err = PipelineSnapshot::load(&path).map(|_| ()).expect_err("empty must fail");
    assert!(
        matches!(err, PersistError::Io(cats::io::IoError::Empty { .. })),
        "want the empty-file error, got: {err}"
    );

    // Backward compatibility: a legacy raw-JSON snapshot (no checksum
    // header) still loads verbatim.
    std::fs::write(&path, snap.to_json().expect("serialize").as_bytes()).expect("legacy write");
    let legacy = PipelineSnapshot::load(&path).expect("legacy raw-JSON snapshot loads");
    assert_eq!(legacy.format_version, cats::core::SNAPSHOT_FORMAT_VERSION);

    let _ = std::fs::remove_dir_all(&dir);
}
